package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// segMagic opens every segment file. The trailing version byte gates
// future layout changes; today only version 1 exists.
var segMagic = []byte{'C', 'M', 'H', 'W', 'A', 'L', 0, 1}

const (
	segMagicLen    = 8
	defaultSegSize = 8 << 20 // rotate segments at 8 MiB
	defaultSyncGap = 50 * time.Millisecond
)

// SyncPolicy selects when appended records are fsynced to disk.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a record handed back from
	// Append is durable. Combined with the transport's log-before-ack
	// ordering this is the lossless configuration (DESIGN.md §11).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (Options.SyncEvery):
	// bounded loss window, near-SyncNever append cost.
	SyncInterval
	// SyncNever leaves flushing to the OS; rotation and Close still
	// sync. Records since the last sync can be lost to a crash.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy maps the cmhnode -fsync flag values onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval, or never)", s)
}

// Options configures Open.
type Options struct {
	// Dir is the log directory, created if absent. Segments and
	// checkpoints for one host share it; two hosts must not.
	Dir string
	// SegmentBytes rotates the active segment once it reaches this
	// size (default 8 MiB).
	SegmentBytes int64
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval ticker period (default 50ms).
	SyncEvery time.Duration
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	// Records is the number of committed records in the log, the
	// recovered prefix included.
	Records uint64
	// RecordsAppended counts appends by this process.
	RecordsAppended uint64
	// TornRecordsDropped counts corrupt or torn regions truncated at
	// Open — one per contiguous region, since record boundaries inside
	// a torn region are unknowable.
	TornRecordsDropped uint64
	// Syncs counts explicit fsyncs of the active segment.
	Syncs uint64
	// Segments is the live segment-file count.
	Segments int
	// CheckpointsTaken counts checkpoints written by this process.
	CheckpointsTaken uint64
	// LastCheckpointSeq is the sequence number of the newest
	// checkpoint on disk (0 when none).
	LastCheckpointSeq uint64
}

// Log is an append-only record log over numbered segment files, safe
// for concurrent use.
type Log struct {
	opts Options

	mu       sync.Mutex
	f        *os.File
	segIdx   uint64
	segIdxs  []uint64 // live segment indices, ascending
	segOff   int64
	count    uint64 // committed records (LSN of the last record)
	appended uint64
	torn     uint64
	syncs    uint64
	dirty    bool
	buf      []byte
	ckpts    uint64
	ckptSeq  uint64
	closed   bool

	stopSync chan struct{}
	syncDone chan struct{}
}

// Open opens (or creates) the log in opts.Dir, verifying every segment
// record by record. The first torn or corrupt record ends the
// committed log: the file is truncated back to it and any later
// segments are deleted, so replay never sees an uncommitted suffix.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegSize
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = defaultSyncGap
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	w := &Log{opts: opts}
	if err := w.recover(); err != nil {
		return nil, err
	}
	if seqs, err := checkpointSeqs(opts.Dir); err != nil {
		return nil, err
	} else if len(seqs) > 0 {
		w.ckptSeq = seqs[len(seqs)-1]
	}
	if opts.Sync == SyncInterval {
		w.stopSync = make(chan struct{})
		w.syncDone = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

func segName(idx uint64) string { return fmt.Sprintf("wal-%08d.seg", idx) }

// recover scans the directory, truncates the torn tail, and positions
// the log for appending.
func (w *Log) recover() error {
	ents, err := os.ReadDir(w.opts.Dir)
	if err != nil {
		return err
	}
	var idxs []uint64
	for _, e := range ents {
		var idx uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%08d.seg", &idx); n == 1 {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })

	if len(idxs) == 0 {
		return w.startSegment(1)
	}
	for at, idx := range idxs {
		path := filepath.Join(w.opts.Dir, segName(idx))
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		keep, recs, ok := verifySegment(data)
		w.count += recs
		if !ok || int64(keep) < int64(len(data)) {
			// Torn or corrupt suffix: truncate here, drop later
			// segments entirely — their records follow the tear and
			// are not part of the committed log.
			w.torn++
			if err := os.Truncate(path, int64(keep)); err != nil {
				return err
			}
			for _, later := range idxs[at+1:] {
				if err := os.Remove(filepath.Join(w.opts.Dir, segName(later))); err != nil {
					return err
				}
				w.torn++
			}
			idxs = idxs[:at+1]
			break
		}
	}
	w.segIdxs = idxs
	last := idxs[len(idxs)-1]
	f, err := os.OpenFile(filepath.Join(w.opts.Dir, segName(last)), os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	off, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return err
	}
	if off < segMagicLen {
		// Header itself was torn; rewrite it.
		if _, err := f.WriteAt(segMagic, 0); err != nil {
			f.Close()
			return err
		}
		off = segMagicLen
		if err := f.Truncate(off); err != nil {
			f.Close()
			return err
		}
	}
	w.f, w.segIdx, w.segOff = f, last, off
	return nil
}

// verifySegment walks one segment's bytes and reports the byte offset
// of the last committed record's end, the committed record count, and
// whether the segment is fully intact (header valid and no trailing
// garbage).
func verifySegment(data []byte) (keep int, records uint64, ok bool) {
	if len(data) < segMagicLen || string(data[:segMagicLen]) != string(segMagic) {
		return 0, 0, false
	}
	off := segMagicLen
	for off < len(data) {
		_, _, _, n, err := parseRecord(data[off:])
		if err != nil {
			return off, records, false
		}
		off += n
		records++
	}
	return off, records, true
}

func (w *Log) startSegment(idx uint64) error {
	f, err := os.OpenFile(filepath.Join(w.opts.Dir, segName(idx)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return err
	}
	w.f, w.segIdx, w.segOff = f, idx, segMagicLen
	w.segIdxs = append(w.segIdxs, idx)
	return nil
}

// Append commits one record and returns its LSN (1-based position in
// the log). Under SyncAlways the record is durable on return.
func (w *Log) Append(kind byte, gen uint64, payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("wal: append on closed log")
	}
	if w.segOff >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	w.buf = appendRecord(w.buf[:0], kind, gen, payload)
	if _, err := w.f.Write(w.buf); err != nil {
		return 0, err
	}
	w.segOff += int64(len(w.buf))
	w.count++
	w.appended++
	w.dirty = true
	if w.opts.Sync == SyncAlways {
		if err := w.syncLocked(); err != nil {
			return 0, err
		}
	}
	return w.count, nil
}

func (w *Log) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	return w.startSegment(w.segIdx + 1)
}

func (w *Log) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	w.syncs++
	return nil
}

// Sync fsyncs any unsynced appends.
func (w *Log) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.syncLocked()
}

func (w *Log) syncLoop() {
	t := time.NewTicker(w.opts.SyncEvery)
	defer t.Stop()
	defer close(w.syncDone)
	for {
		select {
		case <-t.C:
			_ = w.Sync()
		case <-w.stopSync:
			return
		}
	}
}

// NextLSN returns the LSN the next Append will get. The checkpoint
// frontier recorded at a quiescent cut is NextLSN()-1: every committed
// record at or below it is reflected in the checkpointed state.
func (w *Log) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count + 1
}

// Scan replays every committed record in log order. The payload slice
// is only valid during the callback. Scanning reads the segments back
// from the filesystem, so it observes appends made by this process
// whether or not they have been fsynced.
func (w *Log) Scan(fn func(lsn uint64, kind byte, gen uint64, payload []byte) error) error {
	w.mu.Lock()
	idxs := append([]uint64(nil), w.segIdxs...)
	w.mu.Unlock()
	var lsn uint64
	for _, idx := range idxs {
		data, err := os.ReadFile(filepath.Join(w.opts.Dir, segName(idx)))
		if err != nil {
			return err
		}
		off := segMagicLen
		for off < len(data) {
			kind, gen, payload, n, err := parseRecord(data[off:])
			if err != nil {
				return fmt.Errorf("wal: segment %d offset %d: %w", idx, off, err)
			}
			lsn++
			if err := fn(lsn, kind, gen, payload); err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}

// Stats returns a snapshot of the log's counters.
func (w *Log) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Records:            w.count,
		RecordsAppended:    w.appended,
		TornRecordsDropped: w.torn,
		Syncs:              w.syncs,
		Segments:           len(w.segIdxs),
		CheckpointsTaken:   w.ckpts,
		LastCheckpointSeq:  w.ckptSeq,
	}
}

// Close syncs and closes the active segment. Further appends fail.
func (w *Log) Close() error {
	if w.stopSync != nil {
		close(w.stopSync)
		<-w.syncDone
		w.stopSync = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
