// Package wal implements the durability layer for a detector host: a
// write-ahead envelope log plus engine-state checkpoints. Records
// re-use the §9 binary wire codec for their payloads, so the log is a
// byte-exact journal of what the transport delivered; replaying the
// tail after the newest checkpoint reconstructs the host's state
// deterministically (DESIGN.md §11).
//
// The log is a sequence of fixed-header records across numbered
// segment files. Each record carries its own CRC32C, so a torn write
// at the physical end of the log (or a bit flip anywhere) is detected
// on open and the log is truncated back to its last committed record
// instead of poisoning replay.
package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Record layout, little-endian:
//
//	u32 n    — body length (kind + gen + payload), so n >= recBodyMin
//	u32 crc  — CRC32C (Castagnoli) over the body
//	u8  kind — record type (KindEnvelope, ...)
//	u64 gen  — durability generation the record was appended under
//	payload  — kind-specific bytes (§9 envelope frame for KindEnvelope)
//
// The generation is part of every record rather than a segment header
// so that a single segment can span a crash/restore cycle and replay
// can fence records from a stale timeline record by record.
const (
	recHdrLen  = 8       // n + crc
	recBodyMin = 9       // kind + gen
	recBodyMax = 1 << 24 // matches the codec's maxFrameLen scale
)

// Record kinds.
const (
	// KindEnvelope marks a payload holding one §9 binary envelope
	// frame exactly as the transport delivered it.
	KindEnvelope byte = 1
)

// Sentinel parse errors. ErrTornRecord covers truncation (the bytes
// end mid-record); ErrBadRecord covers structural corruption (bad
// length or CRC mismatch). Open treats both as the end of the
// committed log.
var (
	ErrTornRecord = errors.New("wal: torn record")
	ErrBadRecord  = errors.New("wal: bad record")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord appends one encoded record to dst and returns the grown
// slice.
func appendRecord(dst []byte, kind byte, gen uint64, payload []byte) []byte {
	n := recBodyMin + len(payload)
	var hdr [recHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
	start := len(dst)
	dst = append(dst, hdr[:]...)
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint64(dst, gen)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start+recHdrLen:], castagnoli)
	binary.LittleEndian.PutUint32(dst[start+4:], crc)
	return dst
}

// parseRecord decodes one record from the front of b, returning the
// kind, generation, payload (aliasing b — copy before retaining), and
// bytes consumed. A short buffer yields ErrTornRecord; a structurally
// invalid or CRC-failing record yields ErrBadRecord. Nothing is
// consumed on error.
func parseRecord(b []byte) (kind byte, gen uint64, payload []byte, consumed int, err error) {
	if len(b) < recHdrLen {
		return 0, 0, nil, 0, ErrTornRecord
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n < recBodyMin || n > recBodyMax {
		return 0, 0, nil, 0, ErrBadRecord
	}
	if len(b) < recHdrLen+n {
		return 0, 0, nil, 0, ErrTornRecord
	}
	body := b[recHdrLen : recHdrLen+n]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(b[4:]) {
		return 0, 0, nil, 0, ErrBadRecord
	}
	return body[0], binary.LittleEndian.Uint64(body[1:]), body[recBodyMin:], recHdrLen + n, nil
}
