package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func TestGenCorpus(t *testing.T) {
	if os.Getenv("WAL_GEN_CORPUS") == "" {
		t.Skip("set WAL_GEN_CORPUS=1 to regenerate the committed fuzz seeds")
	}
	clean := appendRecord(nil, KindEnvelope, 42, []byte("seed-envelope-frame"))
	flipped := append([]byte(nil), clean...)
	flipped[recHdrLen+2] ^= 0x08
	record := [][]byte{
		clean,
		appendRecord(nil, KindEnvelope, 0, nil),
		clean[:len(clean)-3],
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1},
		flipped,
		append(append([]byte(nil), clean...), clean...),
	}
	good := append([]byte(nil), segMagic...)
	good = appendRecord(good, KindEnvelope, 7, []byte("one"))
	good = appendRecord(good, KindEnvelope, 7, []byte("two"))
	segment := [][]byte{
		good,
		good[:len(good)-2],
		[]byte("CMHWAL"),
		append([]byte(nil), segMagic...),
	}
	for name, seeds := range map[string][][]byte{"FuzzWALRecord": record, "FuzzWALSegment": segment} {
		dir := filepath.Join("testdata", "fuzz", name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%d", i)), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
