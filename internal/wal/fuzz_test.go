package wal

import (
	"bytes"
	"testing"
)

// FuzzWALRecord drives the record parser with arbitrary bytes — torn
// prefixes, bit flips, hostile length fields — and checks the parser's
// contract: it never panics, never over-consumes, errors only with its
// two sentinels, and round-trips every record it accepts.
func FuzzWALRecord(f *testing.F) {
	// Committed seeds: a clean record, an empty payload, a torn tail,
	// a length-field attack, and a CRC flip.
	clean := appendRecord(nil, KindEnvelope, 42, []byte("seed-envelope-frame"))
	f.Add(clean)
	f.Add(appendRecord(nil, KindEnvelope, 0, nil))
	f.Add(clean[:len(clean)-3])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1})
	flipped := append([]byte(nil), clean...)
	flipped[recHdrLen+2] ^= 0x08
	f.Add(flipped)
	f.Add(append(append([]byte(nil), clean...), clean...))

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, gen, payload, n, err := parseRecord(data)
		if err != nil {
			if err != ErrTornRecord && err != ErrBadRecord {
				t.Fatalf("unexpected error type: %v", err)
			}
			if n != 0 {
				t.Fatalf("error consumed %d bytes", n)
			}
			return
		}
		if n < recHdrLen+recBodyMin || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Accepted records must re-encode to the exact bytes parsed:
		// the log's scan/truncate logic depends on byte-precise
		// framing.
		re := appendRecord(nil, kind, gen, payload)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data[:n], re)
		}
	})
}

// FuzzWALSegment feeds whole segment images to the open-time verifier:
// whatever the bytes, it must report a keep-offset inside the data and
// a record count consistent with re-parsing the kept prefix.
func FuzzWALSegment(f *testing.F) {
	good := append([]byte(nil), segMagic...)
	good = appendRecord(good, KindEnvelope, 7, []byte("one"))
	good = appendRecord(good, KindEnvelope, 7, []byte("two"))
	f.Add(good)
	f.Add(good[:len(good)-2])
	f.Add([]byte("CMHWAL"))
	f.Add(append([]byte(nil), segMagic...))

	f.Fuzz(func(t *testing.T, data []byte) {
		keep, records, ok := verifySegment(data)
		if keep < 0 || keep > len(data) {
			t.Fatalf("keep=%d out of range [0,%d]", keep, len(data))
		}
		if ok && keep != len(data) {
			t.Fatalf("ok but keep=%d != len=%d", keep, len(data))
		}
		if keep > 0 {
			// The kept prefix must itself verify cleanly.
			k2, r2, ok2 := verifySegment(data[:keep])
			if !ok2 || k2 != keep || r2 != records {
				t.Fatalf("kept prefix unstable: %d/%d/%v vs %d/%d", k2, r2, ok2, keep, records)
			}
		}
	})
}
