package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Checkpoint files live beside the segments as ckpt-<seq>.ck, written
// atomically (temp file + fsync + rename + directory fsync) so a crash
// mid-checkpoint leaves the previous one untouched. The payload is
// opaque to this package — the engine serializes its own state —
// wrapped in a magic header and CRC32C so Load can skip a corrupt
// newest checkpoint and fall back to an older valid one.
//
//	8B magic | u32 len | u32 crc | payload

var ckptMagic = []byte{'C', 'M', 'H', 'C', 'K', 'P', 0, 1}

const ckptHdrLen = 16

func ckptName(seq uint64) string { return fmt.Sprintf("ckpt-%08d.ck", seq) }

// keepCheckpoints is how many recent checkpoint files survive a write;
// older ones are the fallback chain and anything beyond it is pruned.
const keepCheckpoints = 2

func checkpointSeqs(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		var seq uint64
		if n, _ := fmt.Sscanf(e.Name(), "ckpt-%08d.ck", &seq); n == 1 {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// WriteCheckpoint durably writes a new checkpoint with the next
// sequence number and prunes all but the newest keepCheckpoints files.
func (w *Log) WriteCheckpoint(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("wal: checkpoint on closed log")
	}
	seq := w.ckptSeq + 1
	buf := make([]byte, 0, ckptHdrLen+len(payload))
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	buf = append(buf, payload...)

	tmp := filepath.Join(w.opts.Dir, ckptName(seq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	final := filepath.Join(w.opts.Dir, ckptName(seq))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := syncDir(w.opts.Dir); err != nil {
		return 0, err
	}
	w.ckptSeq = seq
	w.ckpts++

	if seqs, err := checkpointSeqs(w.opts.Dir); err == nil && len(seqs) > keepCheckpoints {
		for _, old := range seqs[:len(seqs)-keepCheckpoints] {
			os.Remove(filepath.Join(w.opts.Dir, ckptName(old)))
		}
	}
	return seq, nil
}

// LoadCheckpoint returns the payload and sequence number of the newest
// structurally valid checkpoint, skipping corrupt ones. With no valid
// checkpoint on disk it returns (nil, 0, nil): recovery then replays
// the whole log from a blank engine.
func (w *Log) LoadCheckpoint() ([]byte, uint64, error) {
	seqs, err := checkpointSeqs(w.opts.Dir)
	if err != nil {
		return nil, 0, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(w.opts.Dir, ckptName(seqs[i])))
		if err != nil {
			continue
		}
		payload, ok := parseCheckpoint(data)
		if !ok {
			continue
		}
		return payload, seqs[i], nil
	}
	return nil, 0, nil
}

func parseCheckpoint(data []byte) ([]byte, bool) {
	if len(data) < ckptHdrLen || string(data[:segMagicLen]) != string(ckptMagic) {
		return nil, false
	}
	n := int(binary.LittleEndian.Uint32(data[8:]))
	crc := binary.LittleEndian.Uint32(data[12:])
	if len(data) != ckptHdrLen+n {
		return nil, false
	}
	payload := data[ckptHdrLen:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, false
	}
	return payload, true
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
