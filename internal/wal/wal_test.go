package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, opts Options) *Log {
	t.Helper()
	w, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w
}

func collect(t *testing.T, w *Log) []string {
	t.Helper()
	var got []string
	err := w.Scan(func(lsn uint64, kind byte, gen uint64, payload []byte) error {
		got = append(got, fmt.Sprintf("%d/%d/%d/%s", lsn, kind, gen, payload))
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return got
}

func TestAppendScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	for i := 0; i < 10; i++ {
		lsn, err := w.Append(KindEnvelope, 7, []byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	got := collect(t, w)
	if len(got) != 10 || got[3] != "4/1/7/payload-3" {
		t.Fatalf("scan mismatch: %v", got)
	}
	if st := w.Stats(); st.Records != 10 || st.RecordsAppended != 10 || st.Syncs != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: committed records survive, LSNs continue.
	w2 := mustOpen(t, Options{Dir: dir})
	defer w2.Close()
	if got := collect(t, w2); len(got) != 10 {
		t.Fatalf("reopen lost records: %v", got)
	}
	if lsn, err := w2.Append(KindEnvelope, 8, []byte("more")); err != nil || lsn != 11 {
		t.Fatalf("append after reopen: lsn=%d err=%v", lsn, err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	payload := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < 20; i++ {
		if _, err := w.Append(KindEnvelope, 1, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := w.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation, segments = %d", st.Segments)
	}
	if got := collect(t, w); len(got) != 20 {
		t.Fatalf("scan across segments: got %d records", len(got))
	}
	w.Close()

	w2 := mustOpen(t, Options{Dir: dir})
	defer w2.Close()
	if got := collect(t, w2); len(got) != 20 {
		t.Fatalf("reopen across segments: got %d records", len(got))
	}
}

// TestTornTailTruncation simulates a crash mid-write: a trailing
// partial record must be dropped on open without losing any committed
// record, and the log must keep working.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	for i := 0; i < 5; i++ {
		if _, err := w.Append(KindEnvelope, 3, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	w.Close()

	seg := filepath.Join(dir, segName(1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Append half of a valid record's bytes: a torn write.
	torn := appendRecord(nil, KindEnvelope, 3, []byte("never-committed"))
	if err := os.WriteFile(seg, append(full, torn[:len(torn)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := mustOpen(t, Options{Dir: dir})
	if st := w2.Stats(); st.TornRecordsDropped != 1 || st.Records != 5 {
		t.Fatalf("stats after torn tail = %+v", st)
	}
	if got := collect(t, w2); len(got) != 5 || got[4] != "5/1/3/rec-4" {
		t.Fatalf("committed records damaged: %v", got)
	}
	// The log must append cleanly after truncation.
	if lsn, err := w2.Append(KindEnvelope, 3, []byte("post-crash")); err != nil || lsn != 6 {
		t.Fatalf("append after truncation: lsn=%d err=%v", lsn, err)
	}
	w2.Close()
}

// TestBitFlipDropsSuffix corrupts a byte inside record 3 of 5: records
// 1-2 survive, the flipped record and everything after it are dropped
// (mid-log corruption means the suffix cannot be trusted).
func TestBitFlipDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Sync: SyncAlways})
	var offsets []int64
	for i := 0; i < 5; i++ {
		off := w.segOff
		if _, err := w.Append(KindEnvelope, 3, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
		offsets = append(offsets, off)
	}
	w.Close()

	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[2]+recHdrLen+recBodyMin] ^= 0x40 // flip a payload bit in record 3
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := mustOpen(t, Options{Dir: dir})
	defer w2.Close()
	if got := collect(t, w2); len(got) != 2 || got[1] != "2/1/3/rec-1" {
		t.Fatalf("prefix after bit flip: %v", got)
	}
	if st := w2.Stats(); st.TornRecordsDropped != 1 {
		t.Fatalf("stats after bit flip = %+v", st)
	}
}

// TestTornEarlierSegmentDropsLater ensures corruption in segment k
// also discards segments >k: they follow the tear in log order.
func TestTornEarlierSegmentDropsLater(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, SegmentBytes: 128})
	for i := 0; i < 12; i++ {
		if _, err := w.Append(KindEnvelope, 1, bytes.Repeat([]byte("y"), 40)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if w.Stats().Segments < 3 {
		t.Skip("need at least 3 segments for this test")
	}
	w.Close()

	seg2 := filepath.Join(dir, segName(2))
	data, err := os.ReadFile(seg2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg2, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := mustOpen(t, Options{Dir: dir})
	defer w2.Close()
	st := w2.Stats()
	if st.Segments != 2 {
		t.Fatalf("later segments kept: %+v", st)
	}
	if st.TornRecordsDropped < 2 {
		t.Fatalf("expected torn region + dropped segment counted: %+v", st)
	}
}

func TestCheckpointWriteLoadFallback(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir})
	if p, seq, err := w.LoadCheckpoint(); err != nil || p != nil || seq != 0 {
		t.Fatalf("empty load = %v/%d/%v", p, seq, err)
	}
	if seq, err := w.WriteCheckpoint([]byte("state-v1")); err != nil || seq != 1 {
		t.Fatalf("write 1: seq=%d err=%v", seq, err)
	}
	if seq, err := w.WriteCheckpoint([]byte("state-v2")); err != nil || seq != 2 {
		t.Fatalf("write 2: seq=%d err=%v", seq, err)
	}
	p, seq, err := w.LoadCheckpoint()
	if err != nil || seq != 2 || string(p) != "state-v2" {
		t.Fatalf("load = %q/%d/%v", p, seq, err)
	}

	// Corrupt the newest checkpoint: load falls back to the previous.
	path := filepath.Join(dir, ckptName(2))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0x01
	os.WriteFile(path, data, 0o644)
	p, seq, err = w.LoadCheckpoint()
	if err != nil || seq != 1 || string(p) != "state-v1" {
		t.Fatalf("fallback load = %q/%d/%v", p, seq, err)
	}
	w.Close()

	// Reopen continues the checkpoint sequence.
	w2 := mustOpen(t, Options{Dir: dir})
	defer w2.Close()
	if seq, err := w2.WriteCheckpoint([]byte("state-v3")); err != nil || seq != 3 {
		t.Fatalf("write after reopen: seq=%d err=%v", seq, err)
	}
}

func TestCheckpointPruning(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir})
	defer w.Close()
	for i := 0; i < 5; i++ {
		if _, err := w.WriteCheckpoint([]byte{byte(i)}); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	seqs, err := checkpointSeqs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != keepCheckpoints || seqs[len(seqs)-1] != 5 {
		t.Fatalf("pruning kept %v", seqs)
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Sync: SyncInterval, SyncEvery: time.Millisecond})
	if _, err := w.Append(KindEnvelope, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Close stops the ticker and performs a final sync.
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w2 := mustOpen(t, Options{Dir: dir})
	defer w2.Close()
	if got := collect(t, w2); len(got) != 1 {
		t.Fatalf("interval-synced record lost: %v", got)
	}
}
