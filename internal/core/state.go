package core

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/id"
)

// Checkpoint serialization (engine.Snapshotter). MarshalState captures
// exactly the algorithmic state Snapshot() fingerprints — edge sets,
// computation numbering, the §4.3 latest table, the declaration latch,
// the §5 S_j set and WFGD duplicate-suppression memory — and nothing
// else: observability counters describe the run, static config is
// re-supplied by the constructor, and timers are not persisted (a
// restored edge's delay timer restarts; §4.3 only needs "has existed
// continuously for T", which a fresh window re-establishes
// conservatively).
//
// Neither method serializes through the Runner: the Host invokes them
// with the owning shard parked (checkpoint barrier) or before traffic
// (restore), which is the serialization.

// coreStateVersion versions the layout.
const coreStateVersion = 1

// MarshalState implements engine.Snapshotter. Maps are written in
// sorted key order so equal states marshal to equal bytes.
func (p *Process) MarshalState() []byte {
	w := engine.NewSnapWriter(256)
	w.U8(coreStateVersion)

	writeProcSet(w, p.waitingFor)
	w.Len(len(p.edgeInstance))
	for _, k := range sortedProcKeys(p.edgeInstance) {
		w.I32(int32(k))
		w.U64(p.edgeInstance[k])
	}
	writeProcSet(w, p.pendingIn)
	w.U64(p.nextN)
	w.Len(len(p.latest))
	for _, k := range sortedProcKeys(p.latest) {
		w.I32(int32(k))
		w.U64(p.latest[k])
	}
	w.Bool(p.deadlocked)
	w.I32(int32(p.declaredTag.Initiator))
	w.U64(p.declaredTag.N)

	edges := make([]id.Edge, 0, len(p.blackPaths))
	for e := range p.blackPaths {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	w.Len(len(edges))
	for _, e := range edges {
		w.I32(int32(e.From))
		w.I32(int32(e.To))
	}

	nbrs := make([]id.Proc, 0, len(p.sentWFGD))
	for k := range p.sentWFGD {
		nbrs = append(nbrs, k)
	}
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	w.Len(len(nbrs))
	for _, k := range nbrs {
		keys := make([]string, 0, len(p.sentWFGD[k]))
		for key := range p.sentWFGD[k] {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		w.I32(int32(k))
		w.Len(len(keys))
		for _, key := range keys {
			w.Str(key)
		}
	}
	return w.Bytes()
}

// RestoreState implements engine.Snapshotter, replacing the process's
// algorithmic state wholesale.
func (p *Process) RestoreState(data []byte) error {
	r := engine.NewSnapReader(data)
	if v := r.U8(); v != coreStateVersion && r.Err() == nil {
		return fmt.Errorf("core: state version %d (want %d)", v, coreStateVersion)
	}

	waitingFor := readProcSet(r)
	edgeInstance := make(map[id.Proc]uint64)
	for n := r.Len(); n > 0; n-- {
		k := id.Proc(r.I32())
		edgeInstance[k] = r.U64()
	}
	pendingIn := readProcSet(r)
	nextN := r.U64()
	latest := make(map[id.Proc]uint64)
	for n := r.Len(); n > 0; n-- {
		k := id.Proc(r.I32())
		latest[k] = r.U64()
	}
	deadlocked := r.Bool()
	declaredTag := id.Tag{Initiator: id.Proc(r.I32()), N: r.U64()}

	blackPaths := make(map[id.Edge]struct{})
	for n := r.Len(); n > 0; n-- {
		e := id.Edge{From: id.Proc(r.I32()), To: id.Proc(r.I32())}
		blackPaths[e] = struct{}{}
	}

	sentWFGD := make(map[id.Proc]map[string]struct{})
	for n := r.Len(); n > 0; n-- {
		k := id.Proc(r.I32())
		keys := make(map[string]struct{})
		for kn := r.Len(); kn > 0; kn-- {
			keys[r.Str()] = struct{}{}
		}
		sentWFGD[k] = keys
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: restore state: %w", err)
	}

	p.waitingFor = waitingFor
	p.edgeInstance = edgeInstance
	p.pendingIn = pendingIn
	p.nextN = nextN
	p.latest = latest
	p.deadlocked = deadlocked
	p.declaredTag = declaredTag
	p.blackPaths = blackPaths
	p.sentWFGD = sentWFGD
	return nil
}

func writeProcSet(w *engine.SnapWriter, s map[id.Proc]struct{}) {
	w.Len(len(s))
	for _, k := range sortedProcs(s) {
		w.I32(int32(k))
	}
}

func readProcSet(r *engine.SnapReader) map[id.Proc]struct{} {
	s := make(map[id.Proc]struct{})
	for n := r.Len(); n > 0; n-- {
		s[id.Proc(r.I32())] = struct{}{}
	}
	return s
}

func sortedProcKeys[V any](m map[id.Proc]V) []id.Proc {
	keys := make([]id.Proc, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
