package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/id"
)

// Snapshot renders the process's algorithmic state canonically: two
// processes in the same state produce byte-identical strings, and every
// field that can influence future behaviour is included (edge sets,
// computation numbering, the §4.3 latest-tag table, the declaration
// latch, the §5 S_j set and WFGD duplicate-suppression memory). Pure
// observability counters are deliberately excluded. The explorer hashes
// this to recognise states reached by equivalent interleavings.
func (p *Process) Snapshot() string {
	var out string
	p.run.Exec(func() { out = p.snapshotStep() })
	return out
}

// snapshotStep renders the state from within the serialized step.
func (p *Process) snapshotStep() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core/%d{w:%v in:%v n:%d", p.cfg.ID, sortedProcs(p.waitingFor), sortedProcs(p.pendingIn), p.nextN)
	lat := make([]id.Proc, 0, len(p.latest))
	for k := range p.latest {
		lat = append(lat, k)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.WriteString(" lat:[")
	for _, k := range lat {
		fmt.Fprintf(&b, "%d=%d;", k, p.latest[k])
	}
	b.WriteString("]")
	if p.deadlocked {
		fmt.Fprintf(&b, " dead:%v", p.declaredTag)
	}
	edges := p.blackPathEdgesStep()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	fmt.Fprintf(&b, " S:%v sent:[", edges)
	sw := make([]id.Proc, 0, len(p.sentWFGD))
	for k := range p.sentWFGD {
		sw = append(sw, k)
	}
	sort.Slice(sw, func(i, j int) bool { return sw[i] < sw[j] })
	for _, k := range sw {
		keys := make([]string, 0, len(p.sentWFGD[k]))
		for key := range p.sentWFGD[k] {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "%d=%v;", k, keys)
	}
	b.WriteString("]}")
	return b.String()
}
