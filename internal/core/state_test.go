package core_test

import (
	"bytes"
	"testing"

	"repro/internal/workload"
)

// TestStateRoundTrip drives a system into a nontrivial quiescent state
// (a detected ring deadlock: black paths, latest table, declaration
// latch all populated), marshals every process, restores each into a
// fresh process of an identical unstarted system, and requires the
// Snapshot fingerprints to match byte for byte — the same oracle the
// conformance explorer uses for behavioural equality.
func TestStateRoundTrip(t *testing.T) {
	const n = 8
	sys := newSystem(t, n, workload.BasicOptions{Seed: 11})
	if err := sys.Apply(workload.Ring(n)); err != nil {
		t.Fatal(err)
	}
	sys.Run(1 << 20)
	if len(sys.Detections) == 0 {
		t.Fatal("ring not detected; state would be trivial")
	}

	fresh := newSystem(t, n, workload.BasicOptions{Seed: 11})
	for i, p := range sys.Procs {
		blob := p.MarshalState()
		if len(blob) == 0 {
			t.Fatalf("proc %d: empty state blob", i)
		}
		if err := fresh.Procs[i].RestoreState(blob); err != nil {
			t.Fatalf("proc %d: RestoreState: %v", i, err)
		}
		if got, want := fresh.Procs[i].Snapshot(), p.Snapshot(); got != want {
			t.Fatalf("proc %d: snapshot mismatch after restore\n got %s\nwant %s", i, got, want)
		}
		// Marshal must be deterministic: a second pass over the same
		// state yields identical bytes (sorted map iteration).
		if again := p.MarshalState(); !bytes.Equal(blob, again) {
			t.Fatalf("proc %d: MarshalState not deterministic", i)
		}
		// And the restored process re-marshals to the same bytes.
		if rt := fresh.Procs[i].MarshalState(); !bytes.Equal(blob, rt) {
			t.Fatalf("proc %d: restored state re-marshals differently", i)
		}
	}
}

// TestRestoreStateRejectsBadInput: truncated blobs and wrong versions
// must error without mutating the process.
func TestRestoreStateRejectsBadInput(t *testing.T) {
	sys := newSystem(t, 2, workload.BasicOptions{Seed: 12})
	if err := sys.Apply(workload.Ring(2)); err != nil {
		t.Fatal(err)
	}
	sys.Run(1 << 20)
	p := sys.Procs[0]
	before := p.Snapshot()
	blob := p.MarshalState()

	if err := p.RestoreState(blob[:len(blob)/2]); err == nil {
		t.Error("truncated blob: want error")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 0xEE // version byte
	if err := p.RestoreState(bad); err == nil {
		t.Error("wrong version: want error")
	}
	if err := p.RestoreState(nil); err == nil {
		t.Error("empty blob: want error")
	}
	if got := p.Snapshot(); got != before {
		t.Errorf("failed restore mutated state:\n got %s\nwant %s", got, before)
	}
}
