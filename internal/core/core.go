package core
