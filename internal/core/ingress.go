package core

import (
	"repro/internal/engine"
)

// The validated-ingress layer — typed rejection reasons, the
// ProtocolError record, and the drop-count-report discipline — lives
// once in the engine runtime (internal/engine/ingress.go) since the
// sharded-runtime refactor; this file re-exports the names the basic
// model speaks so callers keep importing them from core.

// ProtocolErrorReason classifies why an ingress frame was rejected by
// the validated ingress layer. A rejected frame is dropped, counted in
// Stats.ProtocolErrors, and reported through Config.OnProtocolError; it
// never mutates protocol state and never panics the process, so a
// misbehaving or forged peer cannot take the detection plane down with
// one bad message.
type ProtocolErrorReason = engine.Reason

// Ingress rejection reasons for the basic model.
const (
	// ReasonStrayReply: a Reply arrived with no outstanding request to
	// the sender — under G1–G4 a reply always answers an edge the
	// receiver created, so a stray one is duplicated or forged.
	ReasonStrayReply = engine.ReasonStrayReply
	// ReasonDuplicateRequest: a Request arrived while the sender's
	// previous request is still unanswered. G1 forbids a conforming
	// sender from re-requesting an existing edge, so the frame is a
	// duplicate or a forgery.
	ReasonDuplicateRequest = engine.ReasonDuplicateRequest
	// ReasonForgedProbeTag: a meaningful probe carried this process's
	// own initiator id with a computation number it never issued — only
	// a forged frame can be "ahead" of its own initiator.
	ReasonForgedProbeTag = engine.ReasonForgedProbeTag
	// ReasonSelfAddressed: the frame claims this process as its own
	// sender. No conforming process sends to itself (Request rejects
	// self-targets), so the frame is forged or misrouted.
	ReasonSelfAddressed = engine.ReasonSelfAddressed
	// ReasonUnknownType: the decoded message is of a type the basic
	// model does not speak (e.g. a DDB control frame, or a type unknown
	// altogether).
	ReasonUnknownType = engine.ReasonUnknownType
)

// ProtocolError describes one ingress frame rejected by a Process
// (Node/From are the transport identities of the rejecting process and
// the claimed sender). It is delivered through Config.OnProtocolError
// after the offending frame has been dropped.
type ProtocolError = engine.ProtocolError
