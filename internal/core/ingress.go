package core

import (
	"fmt"

	"repro/internal/id"
	"repro/internal/msg"
)

// ProtocolErrorReason classifies why an ingress frame was rejected by
// the validated ingress layer. A rejected frame is dropped, counted in
// Stats.ProtocolErrors, and reported through Config.OnProtocolError; it
// never mutates protocol state and never panics the process, so a
// misbehaving or forged peer cannot take the detection plane down with
// one bad message.
type ProtocolErrorReason int

// Ingress rejection reasons for the basic model.
const (
	// ReasonStrayReply: a Reply arrived with no outstanding request to
	// the sender — under G1–G4 a reply always answers an edge the
	// receiver created, so a stray one is duplicated or forged.
	ReasonStrayReply ProtocolErrorReason = iota + 1
	// ReasonDuplicateRequest: a Request arrived while the sender's
	// previous request is still unanswered. G1 forbids a conforming
	// sender from re-requesting an existing edge, so the frame is a
	// duplicate or a forgery.
	ReasonDuplicateRequest
	// ReasonForgedProbeTag: a meaningful probe carried this process's
	// own initiator id with a computation number it never issued — only
	// a forged frame can be "ahead" of its own initiator.
	ReasonForgedProbeTag
	// ReasonSelfAddressed: the frame claims this process as its own
	// sender. No conforming process sends to itself (Request rejects
	// self-targets), so the frame is forged or misrouted.
	ReasonSelfAddressed
	// ReasonUnknownType: the decoded message is of a type the basic
	// model does not speak (e.g. a DDB control frame, or a type unknown
	// altogether).
	ReasonUnknownType
)

var reasonNames = map[ProtocolErrorReason]string{
	ReasonStrayReply:       "stray-reply",
	ReasonDuplicateRequest: "duplicate-request",
	ReasonForgedProbeTag:   "forged-probe-tag",
	ReasonSelfAddressed:    "self-addressed",
	ReasonUnknownType:      "unknown-type",
}

// String returns the lower-case name of the reason.
func (r ProtocolErrorReason) String() string {
	if s, ok := reasonNames[r]; ok {
		return s
	}
	return fmt.Sprintf("protocol-error(%d)", int(r))
}

// ProtocolError describes one ingress frame rejected by a Process. It
// is delivered through Config.OnProtocolError after the offending frame
// has been dropped.
type ProtocolError struct {
	// Proc is the process that rejected the frame.
	Proc id.Proc
	// From is the frame's claimed sender.
	From id.Proc
	// Kind is the offending message's kind; 0 when the type was unknown
	// to the message taxonomy entirely.
	Kind msg.Kind
	// Reason classifies the rejection.
	Reason ProtocolErrorReason
	// Detail is a human-readable elaboration.
	Detail string
}

// Error implements error.
func (e ProtocolError) Error() string {
	return fmt.Sprintf("process %v: %v from %v: %s", e.Proc, e.Reason, e.From, e.Detail)
}

// rejectLocked drops one ingress frame: count it and defer the report
// callback past the critical section. Caller holds p.mu.
func (p *Process) rejectLocked(from id.Proc, kind msg.Kind, reason ProtocolErrorReason, detail string, after []func()) []func() {
	p.protocolErrors++
	if cb := p.cfg.OnProtocolError; cb != nil {
		pe := ProtocolError{Proc: p.cfg.ID, From: from, Kind: kind, Reason: reason, Detail: detail}
		after = append(after, func() { cb(pe) })
	}
	return after
}

// kindOf returns the message kind, or 0 for a type outside the
// taxonomy (possible only with a hand-crafted message value).
func kindOf(m msg.Message) msg.Kind {
	if m == nil {
		return 0
	}
	return m.Kind()
}
