package core_test

// The Step* variants of the failure surface are the engine-facing
// entry points: the sharded Host invokes them already serialized on
// the owning shard loop, bypassing the per-process Runner the public
// PeerDown/PeerUp/Reannounce wrappers go through. They must make the
// same protocol moves as the wrappers they mirror.

import (
	"testing"

	"repro/internal/core"
)

func TestStepVariantsMirrorPublicFailureAPI(t *testing.T) {
	h := newRecoveryHarness(t, 3)
	h.request(t, 0, 1)

	// A live wait edge re-announces (Request{Rejoin}, idempotent at the
	// receiver); a peer we are not waiting on does not.
	if !h.procs[0].StepReannounce(1) {
		t.Fatal("StepReannounce(1) = false with a live wait edge")
	}
	h.sched.Run()
	if h.procs[0].StepReannounce(2) {
		t.Fatal("StepReannounce(2) = true with no edge")
	}

	// StepPeerUp clears incarnation fences without touching the edge;
	// StepPeerDown severs it and reports the aborted wait.
	h.procs[0].StepPeerUp(1)
	h.sched.Run()
	if n := len(h.aborted); n != 0 {
		t.Fatalf("StepPeerUp aborted %d waits", n)
	}
	h.procs[0].StepPeerDown(1)
	h.sched.Run()
	if n := len(h.aborted); n != 1 {
		t.Fatalf("StepPeerDown aborted %d waits, want 1", n)
	}
	if w := h.aborted[0]; w != (core.WaitAborted{Waiter: 0, Peer: 1}) {
		t.Fatalf("aborted %+v", w)
	}
	// The edge is gone: nothing left to re-announce.
	if h.procs[0].StepReannounce(1) {
		t.Fatal("StepReannounce(1) = true after StepPeerDown severed the edge")
	}
}
