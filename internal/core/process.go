// Package core implements the paper's primary contribution for the
// basic model of §2: a process engine that exchanges requests and
// replies under the graph axioms G1–G4, runs the probe computation of
// §3.4 (steps A0, A1, A2), applies the initiation rules of §4.2–4.3,
// and runs the WFGD deadlocked-set propagation of §5.
//
// A Process only ever consults local state, exactly as axiom P3
// permits: it knows which outgoing edges exist (requests it has sent
// and not yet seen answered) and which incoming edges are black
// (requests it has received and not yet answered). It never learns an
// outgoing edge's colour. The global coloured graph exists only in the
// test oracle (package wfg).
//
// The process carries no lock of its own: every step — message
// delivery, public API call, recovery verdict — is serialized by the
// engine runtime (an engine.Host shard when hosted, an inline Runner
// when stand-alone), which is what yields the paper's atomic-step
// property.
package core

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/id"
	"repro/internal/msg"
	"repro/internal/transport"
)

// Timers schedules delayed callbacks; the simulated scheduler and a
// real-time adapter both implement it. Durations are nanoseconds.
type Timers interface {
	After(d int64, fn func())
}

// InitiationPolicy selects when a process starts probe computations.
type InitiationPolicy int

// Initiation policies (§4.2–4.3).
const (
	// InitiateOnBlock starts a probe computation whenever an outgoing
	// edge is added (§4.2's rule).
	InitiateOnBlock InitiationPolicy = iota + 1
	// InitiateAfterDelay starts a probe computation only if an outgoing
	// edge has existed continuously for the timer period T (§4.3's
	// refinement); requires Timers.
	InitiateAfterDelay
	// InitiateManually leaves initiation to explicit StartProbe calls.
	InitiateManually
)

// Config configures a Process.
type Config struct {
	// ID is the process identity (vertex in the wait-for graph).
	ID id.Proc
	// Transport delivers messages; the process registers itself on the
	// node id equal to its process id.
	Transport transport.Transport
	// Policy selects the initiation rule; default InitiateOnBlock.
	Policy InitiationPolicy
	// Delay is the timer T for InitiateAfterDelay, in nanoseconds.
	Delay int64
	// Timers is required for InitiateAfterDelay.
	Timers Timers

	// OnRequest is called after a request from another process arrives
	// (the incoming edge just turned black).
	OnRequest func(from id.Proc)
	// OnActive is called when the process transitions from blocked to
	// active (its last outstanding request was answered).
	OnActive func()
	// OnDeadlock is called when the process declares "I am on a black
	// cycle" (step A1) — at most once per declaration epoch: the latch
	// resets only when PeerDown withdraws a declaration because a crash
	// may have broken the declared cycle, after which a surviving cycle
	// is re-detected and re-declared.
	OnDeadlock func(tag id.Tag)
	// OnWFGD is called whenever the process's permanent-black-path set
	// S grows (§5); edges is the updated full set.
	OnWFGD func(edges []id.Edge)
	// OnProtocolError is called after an ingress frame was rejected by
	// the validation layer (dropped and counted, never applied). nil
	// ignores rejections; they remain visible in Stats.ProtocolErrors.
	OnProtocolError func(ProtocolError)
	// OnWaitAborted is called when PeerDown severs an outgoing wait
	// edge because the waited-on peer is presumed dead — the wait's
	// typed failure outcome, distinct from both a grant and a deadlock.
	OnWaitAborted func(WaitAborted)
}

// Process is one vertex of the basic model. All methods are safe for
// concurrent use; every step is serialized by the engine runtime,
// which yields the paper's atomic-step property.
type Process struct {
	cfg Config

	// run serializes every step of this process (see package comment).
	run engine.Runner
	// ingress and recovery are the runtime's shared rejection and
	// crash-recovery accounting; both are touched only inside steps.
	ingress  engine.Ingress
	recovery engine.Recovery

	// waitingFor is the set of outgoing edges: processes this one has
	// requested and not yet been answered by (P3: existence is local
	// knowledge, colour is not).
	waitingFor map[id.Proc]struct{}
	// edgeInstance counts, per target, how many times the outgoing edge
	// to that target has been created. The §4.3 delay timer captures the
	// instance at creation so that a timer armed for an edge that was
	// granted and re-requested inside the delay window cannot initiate a
	// probe on behalf of the newer edge instance (which has not yet
	// existed continuously for T).
	edgeInstance map[id.Proc]uint64
	// pendingIn is the set of incoming black edges: processes whose
	// requests this one has received and not yet answered (P3).
	pendingIn map[id.Proc]struct{}

	// nextN numbers this process's own probe computations (§3.2).
	nextN uint64
	// latest tracks, per initiator, the newest computation number this
	// process has propagated; older tags are ignored (§4.3: every
	// vertex keeps only the latest computation per initiator, so the
	// table is bounded by N entries).
	latest map[id.Proc]uint64
	// deadlocked latches once the process declares (a dark cycle
	// persists forever, §2.4, so there is no way back).
	deadlocked  bool
	declaredTag id.Tag

	// blackPaths is S_j of §5: edges this process knows to lie on
	// permanent black paths leading from it.
	blackPaths map[id.Edge]struct{}
	// sentWFGD records, per neighbour, the canonical keys of WFGD
	// messages already sent, implementing "if it has not already sent
	// the same message M' to v_k".
	sentWFGD map[id.Proc]map[string]struct{}

	// stats
	probesSent       uint64
	probesMeaningful uint64
	probesDiscarded  uint64
	computations     uint64
}

// NewProcess creates a process and registers it on its transport.
func NewProcess(cfg Config) (*Process, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("process %v: nil transport", cfg.ID)
	}
	if cfg.Policy == 0 {
		cfg.Policy = InitiateOnBlock
	}
	if cfg.Policy == InitiateAfterDelay {
		if cfg.Timers == nil {
			return nil, fmt.Errorf("process %v: InitiateAfterDelay requires Timers", cfg.ID)
		}
		if cfg.Delay <= 0 {
			return nil, fmt.Errorf("process %v: InitiateAfterDelay requires positive Delay", cfg.ID)
		}
	}
	node := transport.NodeID(cfg.ID)
	p := &Process{
		cfg:          cfg,
		run:          engine.RunnerFor(cfg.Transport, node),
		ingress:      engine.NewIngress(node, cfg.OnProtocolError),
		recovery:     engine.NewRecovery(node, cfg.OnWaitAborted),
		waitingFor:   make(map[id.Proc]struct{}),
		edgeInstance: make(map[id.Proc]uint64),
		pendingIn:    make(map[id.Proc]struct{}),
		latest:       make(map[id.Proc]uint64),
		blackPaths:   make(map[id.Edge]struct{}),
		sentWFGD:     make(map[id.Proc]map[string]struct{}),
	}
	cfg.Transport.Register(node, p)
	return p, nil
}

// ID returns the process identity.
func (p *Process) ID() id.Proc { return p.cfg.ID }

// Request sends requests to each target, creating grey outgoing edges
// (G1). It is an error to request from oneself or to request from a
// target an edge to which already exists. Per the initiation policy, a
// probe computation may be started (§4.2: "a vertex initiates a probe
// computation when any outgoing edge is added").
func (p *Process) Request(targets ...id.Proc) error {
	var err error
	p.run.Exec(func() { err = p.requestStep(targets) })
	return err
}

// requestStep is Request's serialized body.
func (p *Process) requestStep(targets []id.Proc) error {
	for _, t := range targets {
		if t == p.cfg.ID {
			return fmt.Errorf("process %v: request to self", p.cfg.ID)
		}
		if _, dup := p.waitingFor[t]; dup {
			return fmt.Errorf("process %v: edge to %v already exists (G1)", p.cfg.ID, t)
		}
	}
	for _, t := range targets {
		p.waitingFor[t] = struct{}{}
		p.edgeInstance[t]++
		p.send(t, msg.Request{})
	}
	switch p.cfg.Policy {
	case InitiateOnBlock:
		p.startProbeStep()
	case InitiateAfterDelay:
		// One timer per added edge: initiate only if that edge instance
		// has existed continuously for T (§4.3). Membership alone is not
		// enough — the edge may have been granted and re-requested
		// inside the window, in which case the current instance is
		// younger than T — so the timer also checks the instance counter
		// captured at creation.
		for _, t := range targets {
			target := t
			instance := p.edgeInstance[target]
			p.cfg.Timers.After(p.cfg.Delay, func() {
				p.run.Exec(func() {
					if _, still := p.waitingFor[target]; still && p.edgeInstance[target] == instance {
						p.startProbeStep()
					}
				})
			})
		}
	}
	return nil
}

// Grant answers a pending request from the given process, whitening the
// edge (G3). Only an active process may reply: Grant returns an error
// if this process has outstanding requests of its own, enforcing G3
// locally.
func (p *Process) Grant(to id.Proc) error {
	var err error
	p.run.Exec(func() {
		if len(p.waitingFor) != 0 {
			err = fmt.Errorf("process %v: blocked process may not reply (G3)", p.cfg.ID)
			return
		}
		if _, ok := p.pendingIn[to]; !ok {
			err = fmt.Errorf("process %v: no pending request from %v", p.cfg.ID, to)
			return
		}
		delete(p.pendingIn, to)
		p.send(to, msg.Reply{})
	})
	return err
}

// GrantAll answers every pending request; it returns the number granted
// or an error if the process is blocked.
func (p *Process) GrantAll() (int, error) {
	var (
		n   int
		err error
	)
	p.run.Exec(func() {
		if len(p.waitingFor) != 0 {
			err = fmt.Errorf("process %v: blocked process may not reply (G3)", p.cfg.ID)
			return
		}
		for from := range p.pendingIn {
			delete(p.pendingIn, from)
			p.send(from, msg.Reply{})
			n++
		}
	})
	return n, err
}

// StartProbe explicitly initiates a probe computation (step A0): send
// probes along all outgoing edges. It returns the computation's tag and
// false if the process is active (an active vertex is on no cycle, so
// there is nothing to probe).
func (p *Process) StartProbe() (id.Tag, bool) {
	var (
		tag id.Tag
		ok  bool
	)
	p.run.Exec(func() { tag, ok = p.startProbeStep() })
	return tag, ok
}

// startProbeStep implements step A0. Caller is on the process's
// serialized step.
func (p *Process) startProbeStep() (id.Tag, bool) {
	if len(p.waitingFor) == 0 {
		return id.Tag{}, false
	}
	p.nextN++
	p.computations++
	tag := id.Tag{Initiator: p.cfg.ID, N: p.nextN}
	for t := range p.waitingFor {
		p.send(t, msg.Probe{Tag: tag})
		p.probesSent++
	}
	return tag, true
}

// HandleMessage implements transport.Handler for stand-alone
// transports: it serializes through the Runner and runs one step.
// Hosted processes skip this path — the shard loop calls Step
// directly, already serialized.
//
// Every frame is validated against local protocol state before it is
// applied. A frame a conforming peer could never have sent — a stray
// reply, a duplicate request, a probe ahead of its own initiator, a
// self-addressed or unknown-typed message — is dropped, counted, and
// reported through OnProtocolError; it never panics and never mutates
// state, so a remote peer cannot crash or corrupt the detection plane.
func (p *Process) HandleMessage(from transport.NodeID, m msg.Message) {
	var after []func() // callbacks deferred past the critical section
	p.run.Exec(func() { after = p.step(id.Proc(from), m) })
	runAfter(after)
}

// Step implements engine.Logic: one atomic protocol step, invoked by
// the runtime already serialized (the Host shard's loop goroutine).
func (p *Process) Step(from transport.NodeID, m msg.Message) {
	runAfter(p.step(id.Proc(from), m))
}

// step applies one delivered message and returns the callbacks to run
// after the step.
func (p *Process) step(sender id.Proc, m msg.Message) []func() {
	var after []func()
	if sender == p.cfg.ID {
		return p.ingress.Reject(transport.NodeID(sender), engine.KindOf(m), engine.ReasonSelfAddressed,
			fmt.Sprintf("frame of type %T claims this process as its sender", m), after)
	}
	switch mm := m.(type) {
	case msg.Request:
		if _, dup := p.pendingIn[sender]; dup {
			if mm.Rejoin {
				// A crash-recovery re-announcement for an edge we still
				// hold: the sender could not know whether we survived the
				// outage with the edge intact, so this is the legitimate
				// idempotent case, not a G1 violation.
				break
			}
			// G1 forbids re-requesting an existing edge, so a second
			// request before our reply is duplicated or forged.
			after = p.ingress.Reject(transport.NodeID(sender), mm.Kind(), engine.ReasonDuplicateRequest,
				"request while the previous one is still unanswered", after)
			break
		}
		// The incoming edge (sender, me) just turned black (G2).
		p.pendingIn[sender] = struct{}{}
		// §5 "thereafter sends M": a predecessor that blocks on an
		// already-deadlocked vertex must still be informed, so WFGD
		// propagation re-runs when a new incoming edge turns black.
		// The per-target duplicate suppression keeps this idempotent.
		if p.deadlocked || len(p.blackPaths) > 0 {
			after = p.propagateWFGDStep(after)
		}
		if cb := p.cfg.OnRequest; cb != nil {
			after = append(after, func() { cb(sender) })
		}

	case msg.Reply:
		if _, ok := p.waitingFor[sender]; !ok {
			after = p.ingress.Reject(transport.NodeID(sender), mm.Kind(), engine.ReasonStrayReply,
				"reply without an outstanding request", after)
			break
		}
		// The outgoing edge (me, sender) just disappeared (G4).
		delete(p.waitingFor, sender)
		if len(p.waitingFor) == 0 {
			if cb := p.cfg.OnActive; cb != nil {
				after = append(after, func() { cb() })
			}
		}

	case msg.Probe:
		after = p.handleProbeStep(sender, mm.Tag, after)

	case *msg.Probe:
		// Pooled pointer form from a zero-allocation transport decode;
		// the tag is copied out here, so the frame may be recycled the
		// moment this step returns. A typed nil (a decoder bug's
		// worst-case product) is rejected like any alien frame.
		if mm == nil {
			after = p.ingress.Reject(transport.NodeID(sender), engine.KindOf(m), engine.ReasonUnknownType,
				"nil probe frame", after)
			break
		}
		after = p.handleProbeStep(sender, mm.Tag, after)

	case msg.WFGD:
		after = p.handleWFGDStep(sender, mm, after)

	default:
		after = p.ingress.Reject(transport.NodeID(sender), engine.KindOf(m), engine.ReasonUnknownType,
			fmt.Sprintf("message type %T is not part of the basic model", m), after)
	}
	return after
}

// runAfter executes callbacks deferred past a critical section.
func runAfter(fns []func()) {
	for _, fn := range fns {
		fn()
	}
}

// handleProbeStep implements steps A1 and A2.
func (p *Process) handleProbeStep(sender id.Proc, tag id.Tag, after []func()) []func() {
	// A probe is meaningful iff the edge (sender, me) exists and is
	// black at receipt — locally: I hold an unanswered request from the
	// sender (P3, §3.2).
	if _, black := p.pendingIn[sender]; !black {
		p.probesDiscarded++
		return after
	}
	if tag.Initiator == p.cfg.ID && tag.N > p.nextN {
		// Only a forged frame can carry our initiator id with a
		// computation number we never issued.
		return p.ingress.Reject(transport.NodeID(sender), msg.Probe{}.Kind(), engine.ReasonForgedProbeTag,
			fmt.Sprintf("probe for computation %v never initiated here", tag), after)
	}
	p.probesMeaningful++

	if tag.Initiator == p.cfg.ID {
		// Step A1: the initiator received a meaningful probe of its own
		// computation — by Theorem 2 it is on a black cycle right now.
		if !p.deadlocked {
			p.deadlocked = true
			p.declaredTag = tag
			if cb := p.cfg.OnDeadlock; cb != nil {
				after = append(after, func() { cb(tag) })
			}
			// §5: after declaring, send M = {(vj, vi)} to every vj with
			// a black incoming edge (vj, vi) — those edges are
			// permanently black because a deadlocked vi never replies.
			after = p.propagateWFGDStep(after)
		}
		return after
	}

	// Step A2: a non-initiator forwards probes on all outgoing edges
	// upon its FIRST meaningful probe of this computation. Keeping only
	// the latest computation number per initiator both implements the
	// first-probe rule and the §4.3 supersession of stale computations.
	if last, seen := p.latest[tag.Initiator]; seen && last >= tag.N {
		return after
	}
	p.latest[tag.Initiator] = tag.N
	for t := range p.waitingFor {
		p.send(t, msg.Probe{Tag: tag})
		p.probesSent++
	}
	return after
}

// handleWFGDStep implements the receive rule of §5's WFGD computation.
func (p *Process) handleWFGDStep(_ id.Proc, m msg.WFGD, after []func()) []func() {
	grew := false
	for _, e := range m.Edges {
		if _, dup := p.blackPaths[e]; !dup {
			p.blackPaths[e] = struct{}{}
			grew = true
		}
	}
	if !grew {
		// S_j unchanged: every message we could send now has been sent
		// already (send-set is a function of S_j), so stop here. This
		// is what makes the computation terminate.
		return after
	}
	if cb := p.cfg.OnWFGD; cb != nil {
		edges := p.blackPathEdgesStep()
		after = append(after, func() { cb(edges) })
	}
	return p.propagateWFGDStep(after)
}

// propagateWFGDStep sends M' = {(vk, vj)} ∪ S_j to every vk with a
// black incoming edge (vk, vj), suppressing duplicates.
func (p *Process) propagateWFGDStep(after []func()) []func() {
	for k := range p.pendingIn {
		out := msg.WFGD{Edges: append(p.blackPathEdgesStep(), id.Edge{From: k, To: p.cfg.ID})}
		canon, key := out.Canonical()
		sent, ok := p.sentWFGD[k]
		if !ok {
			sent = make(map[string]struct{})
			p.sentWFGD[k] = sent
		}
		if _, dup := sent[key]; dup {
			continue
		}
		sent[key] = struct{}{}
		p.send(k, canon)
	}
	return after
}

// blackPathEdgesStep returns S_j as a slice.
func (p *Process) blackPathEdgesStep() []id.Edge {
	out := make([]id.Edge, 0, len(p.blackPaths))
	for e := range p.blackPaths {
		out = append(out, e)
	}
	return out
}

// send hands a message to the transport. Every transport's Send is
// non-blocking and never calls back into the process synchronously, so
// no step cycle is possible.
func (p *Process) send(to id.Proc, m msg.Message) {
	p.cfg.Transport.Send(transport.NodeID(p.cfg.ID), transport.NodeID(to), m)
}

// Blocked reports whether the process has outstanding requests.
func (p *Process) Blocked() bool {
	var out bool
	p.run.Exec(func() { out = len(p.waitingFor) > 0 })
	return out
}

// Deadlocked reports whether the process has declared itself on a black
// cycle, and the tag of the computation that detected it.
func (p *Process) Deadlocked() (id.Tag, bool) {
	var (
		tag id.Tag
		ok  bool
	)
	p.run.Exec(func() { tag, ok = p.declaredTag, p.deadlocked })
	return tag, ok
}

// WaitingFor returns the sorted targets of outstanding requests.
func (p *Process) WaitingFor() []id.Proc {
	var out []id.Proc
	p.run.Exec(func() { out = sortedProcs(p.waitingFor) })
	return out
}

// PendingIn returns the sorted sources of unanswered incoming requests
// (the incoming black edges of P3).
func (p *Process) PendingIn() []id.Proc {
	var out []id.Proc
	p.run.Exec(func() { out = sortedProcs(p.pendingIn) })
	return out
}

// BlackPaths returns S_j, the sorted set of edges this process knows to
// lie on permanent black paths leading from it (§5).
func (p *Process) BlackPaths() []id.Edge {
	var out []id.Edge
	p.run.Exec(func() { out = p.blackPathEdgesStep() })
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// TagTableSize returns the number of per-initiator entries currently
// tracked — the O(N) state bound measured by experiment E2.
func (p *Process) TagTableSize() int {
	var n int
	p.run.Exec(func() { n = len(p.latest) })
	return n
}

// Stats reports detection-traffic counters for this process.
func (p *Process) Stats() Stats {
	var st Stats
	p.run.Exec(func() {
		st = Stats{
			ProbesSent:       p.probesSent,
			ProbesMeaningful: p.probesMeaningful,
			ProbesDiscarded:  p.probesDiscarded,
			Computations:     p.computations,
			ProtocolErrors:   p.ingress.Errors(),
			WaitsAborted:     p.recovery.WaitsAborted(),
		}
	})
	return st
}

// Stats holds per-process detection counters.
type Stats struct {
	ProbesSent       uint64
	ProbesMeaningful uint64
	ProbesDiscarded  uint64
	Computations     uint64
	// ProtocolErrors counts ingress frames rejected by the validation
	// layer (see ProtocolError).
	ProtocolErrors uint64
	// WaitsAborted counts outgoing wait edges severed by PeerDown.
	WaitsAborted uint64
}

func sortedProcs(s map[id.Proc]struct{}) []id.Proc {
	out := make([]id.Proc, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

var (
	_ transport.Handler    = (*Process)(nil)
	_ engine.Logic         = (*Process)(nil)
	_ engine.RecoveryLogic = (*Process)(nil)
)
