package core_test

// Failure-injection tests: the paper's only environmental assumption is
// reliable in-order delivery (§2.4, axiom P4, and P1/P2 which derive
// from it). These tests run the identical scenario over a conforming
// network and over a deliberately non-FIFO one, showing the assumption
// is necessary: when a probe overtakes the request it was sent behind,
// the receiver correctly discards it as non-meaningful (no edge yet)
// and a single probe computation misses a real deadlock.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wfg"
)

// buildPair returns two manually driven processes on the given
// transport.
func buildPair(t *testing.T, net transport.Transport) (*core.Process, *core.Process) {
	t.Helper()
	mk := func(pid id.Proc) *core.Process {
		p, err := core.NewProcess(core.Config{ID: pid, Transport: net, Policy: core.InitiateManually})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	return mk(0), mk(1)
}

func TestProbeOvertakingRequestMissesDeadlock(t *testing.T) {
	// Faulty network: probes fly (1µs), requests crawl (10ms). The
	// probe initiated right after the request overtakes it, violating
	// P1.
	sched := sim.New(1)
	net := transport.NewFaultyNet(sched, func(k msg.Kind) sim.Duration {
		if k == msg.KindProbe {
			return sim.Microsecond
		}
		return 10 * sim.Millisecond
	})
	checker := trace.NewFIFOChecker(nil)
	net.Observe(checker)
	p0, p1 := buildPair(t, net)

	// Form the 2-cycle and fire exactly one computation from each side.
	if err := p0.Request(1); err != nil {
		t.Fatal(err)
	}
	if err := p1.Request(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := p0.StartProbe(); !ok {
		t.Fatal("p0 not blocked")
	}
	if _, ok := p1.StartProbe(); !ok {
		t.Fatal("p1 not blocked")
	}
	sched.Run()

	// The deadlock is real...
	if !p0.Blocked() || !p1.Blocked() {
		t.Fatal("cycle did not form")
	}
	// ...but both probes overtook the requests and were discarded, so
	// neither side declares: a missed detection caused purely by the
	// broken delivery order.
	if _, dead := p0.Deadlocked(); dead {
		t.Fatal("p0 declared despite discarded probe")
	}
	if _, dead := p1.Deadlocked(); dead {
		t.Fatal("p1 declared despite discarded probe")
	}
	if p0.Stats().ProbesDiscarded+p1.Stats().ProbesDiscarded == 0 {
		t.Fatal("no probe was discarded — overtake did not happen")
	}
	// The tripwire must have seen the overtake.
	if checker.Violations() == 0 {
		t.Fatal("FIFO checker missed the injected violation")
	}
}

func TestSameScenarioDetectsOnConformingNetwork(t *testing.T) {
	// Identical drive over the FIFO-preserving simulator: detection is
	// guaranteed (Theorem 1), even though requests are just as slow.
	sched := sim.New(1)
	net := transport.NewSimNet(sched, transport.FixedLatency(10*sim.Millisecond))
	checker := trace.NewFIFOChecker(func(s string) { t.Error("violation on conforming net:", s) })
	net.Observe(checker)
	oracle := wfg.NewGraphObserver(nil)
	net.Observe(oracle)
	p0, p1 := buildPair(t, net)

	if err := p0.Request(1); err != nil {
		t.Fatal(err)
	}
	if err := p1.Request(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := p0.StartProbe(); !ok {
		t.Fatal("p0 not blocked")
	}
	if _, ok := p1.StartProbe(); !ok {
		t.Fatal("p1 not blocked")
	}
	sched.Run()

	_, d0 := p0.Deadlocked()
	_, d1 := p1.Deadlocked()
	if !d0 && !d1 {
		t.Fatal("conforming network missed the deadlock")
	}
	onBlack := false
	oracle.With(func(g *wfg.Graph) { onBlack = g.OnBlackCycle(0) })
	if !onBlack {
		t.Fatal("oracle disagrees with detection")
	}
}

func TestSlowProbesOnlyDelayDetection(t *testing.T) {
	// The converse fault — probes slower than requests but still FIFO
	// per link — is harmless: P4 only requires finite delivery. Use the
	// conforming simulator with huge latency to show detection is
	// merely late, never wrong.
	sched := sim.New(2)
	net := transport.NewSimNet(sched, transport.FixedLatency(sim.Second))
	p0, p1 := buildPair(t, net)
	if err := p0.Request(1); err != nil {
		t.Fatal(err)
	}
	if err := p1.Request(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := p0.StartProbe(); !ok {
		t.Fatal("p0 not blocked")
	}
	sched.Run()
	if _, dead := p0.Deadlocked(); !dead {
		t.Fatal("slow network missed the deadlock")
	}
	if now := sched.Now(); now < 2*sim.Second {
		t.Fatalf("detection implausibly early: %d", now)
	}
}
