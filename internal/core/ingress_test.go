package core_test

// Validated-ingress tests: every frame a conforming peer could never
// have sent must be dropped, counted, and reported — never panic, never
// mutate protocol state. Frames are injected through HandleMessage
// directly, exactly as a transport would deliver a decoded envelope.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// sinkNet is a Transport that swallows every send; handlers are driven
// by hand in these tests.
type sinkNet struct{ sent int }

func (s *sinkNet) Register(transport.NodeID, transport.Handler) {}
func (s *sinkNet) Send(_, _ transport.NodeID, _ msg.Message)    { s.sent++ }

// alienMsg is a message type outside the msg taxonomy entirely.
type alienMsg struct{}

func (alienMsg) Kind() msg.Kind { return msg.Kind(999) }

// newIngressProc builds one manually driven process on a sink transport
// and collects its rejections.
func newIngressProc(t *testing.T, pid id.Proc) (*core.Process, *[]core.ProtocolError) {
	t.Helper()
	var rejected []core.ProtocolError
	p, err := core.NewProcess(core.Config{
		ID:              pid,
		Transport:       &sinkNet{},
		Policy:          core.InitiateManually,
		OnProtocolError: func(e core.ProtocolError) { rejected = append(rejected, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, &rejected
}

// expectReject asserts that delivering m from sender is rejected with
// the given reason and leaves the process's protocol state untouched.
func expectReject(t *testing.T, p *core.Process, rejected *[]core.ProtocolError, sender id.Proc, m msg.Message, want core.ProtocolErrorReason) {
	t.Helper()
	before := p.Snapshot()
	errsBefore := p.Stats().ProtocolErrors
	seen := len(*rejected)
	p.HandleMessage(transport.NodeID(sender), m)
	if after := p.Snapshot(); after != before {
		t.Fatalf("rejected frame mutated state:\nbefore %s\nafter  %s", before, after)
	}
	if got := p.Stats().ProtocolErrors; got != errsBefore+1 {
		t.Fatalf("ProtocolErrors = %d, want %d", got, errsBefore+1)
	}
	if len(*rejected) != seen+1 {
		t.Fatalf("OnProtocolError fired %d times, want %d", len(*rejected)-seen, 1)
	}
	e := (*rejected)[len(*rejected)-1]
	if e.Reason != want {
		t.Fatalf("rejection reason = %v, want %v", e.Reason, want)
	}
	if id.Proc(e.Node) != p.ID() || id.Proc(e.From) != sender {
		t.Fatalf("rejection addressed %v<-%v, want %v<-%v", e.Node, e.From, p.ID(), sender)
	}
}

func TestStrayReplyRejected(t *testing.T) {
	p, rejected := newIngressProc(t, 0)
	// No outstanding request to 1: a reply is stray.
	expectReject(t, p, rejected, 1, msg.Reply{}, core.ReasonStrayReply)
	// A second stray reply is rejected again, not latched.
	expectReject(t, p, rejected, 1, msg.Reply{}, core.ReasonStrayReply)
}

func TestDuplicateRequestRejected(t *testing.T) {
	p, rejected := newIngressProc(t, 0)
	p.HandleMessage(transport.NodeID(1), msg.Request{}) // legitimate
	if got := p.PendingIn(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("PendingIn = %v, want [1]", got)
	}
	// Same edge again before the reply: G1 violation.
	expectReject(t, p, rejected, 1, msg.Request{}, core.ReasonDuplicateRequest)
}

func TestForgedProbeTagRejected(t *testing.T) {
	p, rejected := newIngressProc(t, 0)
	// Make the probe meaningful: an unanswered incoming request from 1,
	// and block on 2 so the process could legitimately be mid-cycle.
	p.HandleMessage(transport.NodeID(1), msg.Request{})
	if err := p.Request(2); err != nil {
		t.Fatal(err)
	}
	// Tag claims this process initiated computation 7; it never started
	// any, so nextN has never reached 7.
	forged := id.Tag{Initiator: 0, N: 7}
	expectReject(t, p, rejected, 1, msg.Probe{Tag: forged}, core.ReasonForgedProbeTag)
	if _, dead := p.Deadlocked(); dead {
		t.Fatal("forged probe tag caused a false declaration")
	}
}

func TestSelfAddressedFrameRejected(t *testing.T) {
	p, rejected := newIngressProc(t, 3)
	expectReject(t, p, rejected, 3, msg.Request{}, core.ReasonSelfAddressed)
	expectReject(t, p, rejected, 3, msg.Probe{Tag: id.Tag{Initiator: 3, N: 1}}, core.ReasonSelfAddressed)
}

func TestUnknownTypeRejected(t *testing.T) {
	p, rejected := newIngressProc(t, 0)
	// A DDB control frame leaking into the basic model...
	expectReject(t, p, rejected, 1, msg.CtrlAbort{Txn: 1}, core.ReasonUnknownType)
	// ...and a type outside the taxonomy altogether.
	expectReject(t, p, rejected, 1, alienMsg{}, core.ReasonUnknownType)
}

func TestRejectionWithoutCallbackStillCounts(t *testing.T) {
	p, err := core.NewProcess(core.Config{ID: 0, Transport: &sinkNet{}, Policy: core.InitiateManually})
	if err != nil {
		t.Fatal(err)
	}
	p.HandleMessage(transport.NodeID(1), msg.Reply{})
	if got := p.Stats().ProtocolErrors; got != 1 {
		t.Fatalf("ProtocolErrors = %d, want 1", got)
	}
}

// TestDelayTimerIgnoresReplacedEdge is the §4.3 stale-timer regression:
// an edge granted and re-requested inside the delay window T must not
// inherit the old instance's timer — the new instance has not existed
// continuously for T, and initiating early breaks the "blocked for at
// least T" premise of the delayed-initiation policy.
func TestDelayTimerIgnoresReplacedEdge(t *testing.T) {
	const (
		latency = sim.Millisecond
		delay   = 10 * sim.Millisecond
	)
	sched := sim.New(1)
	net := transport.NewSimNet(sched, transport.FixedLatency(latency))
	mk := func(pid id.Proc) *core.Process {
		p, err := core.NewProcess(core.Config{
			ID:        pid,
			Transport: net,
			Policy:    core.InitiateAfterDelay,
			Delay:     int64(delay),
			Timers:    workload.SimTimers{Sched: sched},
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p0, p1 := mk(0), mk(1)

	// t=0: first edge instance 0->1; its timer arms for t=10ms.
	if err := p0.Request(1); err != nil {
		t.Fatal(err)
	}
	// t=2ms: the request has arrived; grant it.
	sched.RunUntil(sim.Time(2 * sim.Millisecond))
	if _, err := p1.GrantAll(); err != nil {
		t.Fatal(err)
	}
	// t=4ms: the reply has arrived; re-request the same edge. The second
	// instance's own timer arms for t=14ms.
	sched.RunUntil(sim.Time(4 * sim.Millisecond))
	if p0.Blocked() {
		t.Fatal("test premise broken: reply not yet processed")
	}
	if err := p0.Request(1); err != nil {
		t.Fatal(err)
	}

	// t=12ms: the FIRST timer has fired (t=10ms) while 1 ∈ waitingFor —
	// but for a younger edge instance, so no probe may start.
	sched.RunUntil(sim.Time(12 * sim.Millisecond))
	if got := p0.Stats().Computations; got != 0 {
		t.Fatalf("stale timer initiated: Computations = %d at t=12ms, want 0", got)
	}

	// t=15ms: the second instance has now existed for T; its own timer
	// (t=14ms) initiates exactly one computation.
	sched.RunUntil(sim.Time(15 * sim.Millisecond))
	if got := p0.Stats().Computations; got != 1 {
		t.Fatalf("Computations = %d at t=15ms, want 1", got)
	}
}

// TestDelayTimerGoneEdgeStillSilent: an edge granted and NOT
// re-requested must stay silent past T (the pre-existing membership
// check).
func TestDelayTimerGoneEdgeStillSilent(t *testing.T) {
	sched := sim.New(1)
	net := transport.NewSimNet(sched, transport.FixedLatency(sim.Millisecond))
	p0, err := core.NewProcess(core.Config{
		ID: 0, Transport: net,
		Policy: core.InitiateAfterDelay,
		Delay:  int64(10 * sim.Millisecond),
		Timers: workload.SimTimers{Sched: sched},
	})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := core.NewProcess(core.Config{ID: 1, Transport: net, Policy: core.InitiateManually})
	if err != nil {
		t.Fatal(err)
	}
	if err := p0.Request(1); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(sim.Time(2 * sim.Millisecond))
	if _, err := p1.GrantAll(); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if got := p0.Stats().Computations; got != 0 {
		t.Fatalf("timer for a granted edge initiated: Computations = %d, want 0", got)
	}
}
