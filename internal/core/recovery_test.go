package core_test

// Crash-recovery tests for the process engine's failure surface
// (failure.go): severed waits, incarnation fencing, declaration
// withdrawal, and rejoin re-announcement. The paper's model (axioms
// P1–P4) has no process failures, so every behaviour pinned here is a
// deliberate extension — the tests document exactly where the model's
// guarantees end and the recovery layer's begin.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/sim"
	"repro/internal/transport"
)

// recoveryHarness builds n manually driven processes on a conforming
// simulated network, with deadlock declarations and aborted waits
// recorded per process.
type recoveryHarness struct {
	sched *sim.Scheduler
	net   *transport.SimNet
	procs []*core.Process

	declared map[id.Proc]int
	aborted  []core.WaitAborted
}

func newRecoveryHarness(t *testing.T, n int) *recoveryHarness {
	t.Helper()
	h := &recoveryHarness{
		sched:    sim.New(1),
		declared: make(map[id.Proc]int),
	}
	h.net = transport.NewSimNet(h.sched, transport.FixedLatency(sim.Millisecond))
	for i := 0; i < n; i++ {
		h.procs = append(h.procs, h.spawn(t, id.Proc(i)))
	}
	return h
}

// spawn creates (or, on a reused id, restarts) the process with the
// given id: SimNet registration overwrites, so the fresh blank-state
// process models a crashed-and-restarted incarnation.
func (h *recoveryHarness) spawn(t *testing.T, pid id.Proc) *core.Process {
	t.Helper()
	p, err := core.NewProcess(core.Config{
		ID:        pid,
		Transport: h.net,
		Policy:    core.InitiateManually,
		OnDeadlock: func(id.Tag) {
			h.declared[pid]++
		},
		OnWaitAborted: func(w core.WaitAborted) {
			h.aborted = append(h.aborted, w)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (h *recoveryHarness) request(t *testing.T, from, to int) {
	t.Helper()
	if err := h.procs[from].Request(id.Proc(to)); err != nil {
		t.Fatal(err)
	}
	h.sched.Run()
}

func TestPeerDownSeversWaitAndUnblocks(t *testing.T) {
	h := newRecoveryHarness(t, 2)
	h.request(t, 0, 1)
	p0 := h.procs[0]
	if !p0.Blocked() {
		t.Fatal("p0 should be waiting on p1")
	}

	p0.PeerDown(1)
	if p0.Blocked() {
		t.Fatal("wait on a dead peer must be severed")
	}
	if len(h.aborted) != 1 || h.aborted[0] != (core.WaitAborted{Waiter: 0, Peer: 1}) {
		t.Fatalf("aborted waits = %v, want exactly [0->1]", h.aborted)
	}
	if st := p0.Stats(); st.WaitsAborted != 1 {
		t.Fatalf("WaitsAborted = %d, want 1", st.WaitsAborted)
	}
	// Idempotent, and harmless for strangers.
	p0.PeerDown(1)
	p0.PeerDown(7)
	if st := p0.Stats(); st.WaitsAborted != 1 {
		t.Fatalf("repeat PeerDown severed again: %+v", st)
	}
}

func TestPeerDownDiscardsDeadIncarnationsProbes(t *testing.T) {
	// A probe already in flight from a peer that dies before delivery
	// must land as non-meaningful: PeerDown fenced the black edge the
	// dead incarnation's request created, and without that edge the
	// probe cannot manufacture a cycle through a corpse.
	h := newRecoveryHarness(t, 2)
	h.request(t, 0, 1)
	h.request(t, 1, 0) // 2-cycle formed; both edges black
	p0, p1 := h.procs[0], h.procs[1]

	if _, ok := p1.StartProbe(); !ok {
		t.Fatal("p1 not blocked")
	}
	// The probe is now in flight toward p0; p1 dies before it lands.
	before := p0.Stats().ProbesDiscarded
	p0.PeerDown(1)
	h.sched.Run()

	if got := p0.Stats().ProbesDiscarded; got != before+1 {
		t.Fatalf("ProbesDiscarded = %d, want %d", got, before+1)
	}
	if _, dead := p0.Deadlocked(); dead {
		t.Fatal("p0 declared from a dead incarnation's probe")
	}
	if len(p0.PendingIn()) != 0 {
		t.Fatal("dead peer's black edge survived PeerDown")
	}
}

func TestPeerDownWithdrawsDeclarationWhenCycleBroken(t *testing.T) {
	// p0 declares on a real 2-cycle; then p1 crashes, which breaks the
	// cycle. The declaration must be withdrawn — the paper's "dark
	// cycle persists forever" latch (§2.4) is sound only while every
	// process on the cycle lives — and with the wait severed, p0 is
	// active and no phantom re-declaration can occur.
	h := newRecoveryHarness(t, 2)
	h.request(t, 0, 1)
	h.request(t, 1, 0)
	p0 := h.procs[0]
	if _, ok := p0.StartProbe(); !ok {
		t.Fatal("p0 not blocked")
	}
	h.sched.Run()
	if _, dead := p0.Deadlocked(); !dead {
		t.Fatal("2-cycle not declared")
	}

	p0.PeerDown(1)
	h.sched.Run()
	if _, dead := p0.Deadlocked(); dead {
		t.Fatal("declaration not withdrawn after the cycle broke")
	}
	if p0.Blocked() {
		t.Fatal("p0 should be active after its only wait was severed")
	}
	if len(p0.BlackPaths()) != 0 {
		t.Fatal("permanent-black-path set survived the crash")
	}
	if h.declared[0] != 1 {
		t.Fatalf("declarations = %d, want 1 (no phantom re-declaration)", h.declared[0])
	}
}

func TestFalseSuspicionOfBystanderRedetectsSurvivingCycle(t *testing.T) {
	// A partition can make the failure detector suspect a process that
	// is not on the cycle at all (the lease cannot distinguish crash
	// from partition). The withdrawal must then be temporary: PeerDown
	// re-initiates detection, and the surviving cycle is re-declared.
	h := newRecoveryHarness(t, 3)
	h.request(t, 0, 1)
	h.request(t, 1, 2)
	h.request(t, 2, 0)
	p0 := h.procs[0]
	if _, ok := p0.StartProbe(); !ok {
		t.Fatal("p0 not blocked")
	}
	h.sched.Run()
	if _, dead := p0.Deadlocked(); !dead {
		t.Fatal("3-cycle not declared")
	}

	// Suspect a bystander p0 never waited on; heal afterwards.
	p0.PeerDown(9)
	if _, dead := p0.Deadlocked(); dead {
		t.Fatal("declaration must be withdrawn while suspicion is live")
	}
	h.sched.Run()
	p0.PeerUp(9)

	if _, dead := p0.Deadlocked(); !dead {
		t.Fatal("surviving cycle not re-detected after false suspicion")
	}
	if h.declared[0] != 2 {
		t.Fatalf("declarations = %d, want 2 (withdraw, then re-declare)", h.declared[0])
	}
}

func TestCrashRestartRejoinRedetectsCycle(t *testing.T) {
	// Full outage round-trip: p1 declares on a 2-cycle, crashes, and
	// restarts blank. The survivor fences the old incarnation
	// (PeerDown), clears the fencing when the fresh one joins (PeerUp),
	// and re-announces its still-outstanding wait (Reannounce) — after
	// which the restarted incarnation, numbering computations from 1
	// again, re-forms and re-detects the cycle end to end.
	h := newRecoveryHarness(t, 2)
	h.request(t, 0, 1)
	h.request(t, 1, 0)
	p0 := h.procs[0]
	if _, ok := h.procs[1].StartProbe(); !ok {
		t.Fatal("p1 not blocked")
	}
	h.sched.Run()
	if _, dead := h.procs[1].Deadlocked(); !dead {
		t.Fatal("2-cycle not declared by p1")
	}

	// p1 crashes and restarts with blank state on the same node id.
	p1b := h.spawn(t, 1)
	h.procs[1] = p1b
	p0.PeerDown(1)
	if p0.Blocked() {
		t.Fatal("p0 must unblock when its only wait dies")
	}

	// The application re-issues its aborted wait; the restarted peer
	// blocks on p0 in turn, re-forming the cycle across incarnations.
	h.request(t, 0, 1)
	p0.PeerUp(1)
	if !p0.Reannounce(1) {
		t.Fatal("reannounce found no edge despite the re-issued wait")
	}
	if p0.Reannounce(9) {
		t.Fatal("reannounce invented an edge to a stranger")
	}
	h.sched.Run()
	h.request(t, 1, 0)

	// The fresh incarnation initiates with n=1; the survivor's latest
	// table must not suppress it as stale (the old incarnation also
	// used n=1), or the surviving deadlock is never found again.
	if _, ok := p1b.StartProbe(); !ok {
		t.Fatal("restarted p1 not blocked")
	}
	h.sched.Run()
	if _, dead := p1b.Deadlocked(); !dead {
		t.Fatal("restarted incarnation failed to re-detect the cycle")
	}
	if st := p1b.Stats(); st.ProtocolErrors != 0 {
		t.Fatalf("rejoin produced %d protocol errors", st.ProtocolErrors)
	}
	if st := p0.Stats(); st.ProtocolErrors != 0 {
		t.Fatalf("survivor rejected rejoin traffic: %d protocol errors", st.ProtocolErrors)
	}
}

func TestReannounceIdempotentWhenEdgeSurvived(t *testing.T) {
	// If the outage was a partition rather than a crash, the peer kept
	// the edge. The Rejoin-marked re-announcement must then be a no-op
	// at the receiver — not a duplicate-request protocol error — and
	// the edge must remain exactly once in its dependent set.
	h := newRecoveryHarness(t, 2)
	h.request(t, 0, 1)
	p0, p1 := h.procs[0], h.procs[1]

	if !p0.Reannounce(1) {
		t.Fatal("edge exists; reannounce must send")
	}
	h.sched.Run()
	if st := p1.Stats(); st.ProtocolErrors != 0 {
		t.Fatalf("idempotent rejoin rejected: %d protocol errors", st.ProtocolErrors)
	}
	if in := p1.PendingIn(); len(in) != 1 || in[0] != 0 {
		t.Fatalf("pendingIn = %v, want exactly [0]", in)
	}
}
