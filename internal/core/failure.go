package core

import (
	"repro/internal/engine"
	"repro/internal/id"
	"repro/internal/msg"
	"repro/internal/transport"
)

// This file is the crash-recovery surface of the process engine. The
// paper's model has no process failures — axioms P1–P4 assume every
// process keeps running and every sent message is delivered — so the
// engine cannot derive failure handling from the protocol itself.
// Instead the layer below (the transport's lease-based failure
// detector, an engine.Host routing connection events, or the
// fault-injection harness) tells the process when a peer is presumed
// dead (PeerDown) and when it is reachable again (PeerUp), and the
// process translates those verdicts into the only sound moves
// available:
//
//   - A wait on a dead peer cannot resolve — the peer will never
//     reply — and it also cannot count toward a deadlock in the
//     paper's sense: a dark cycle needs its edges to persist, and the
//     dead peer's outgoing edges vanished with its state. The edge is
//     therefore converted into a typed WaitAborted outcome: the waiter
//     unblocks and the application decides whether to retry.
//
//   - Everything learned from or about the dead peer's incarnation is
//     fenced: its unanswered request (our incoming black edge), its
//     computation numbers, our WFGD duplicate-suppression record for
//     it, and any permanent-black-path knowledge involving it. A
//     restarted incarnation starts from a blank slate on both sides.
//
//   - A deadlock declaration is withdrawn and re-derived. The paper's
//     latch ("a dark cycle persists forever", §2.4) is sound only
//     while no process dies; a crash may have broken the declared
//     cycle. Withdrawing and immediately re-initiating a probe
//     computation keeps both directions honest: a genuinely surviving
//     cycle is re-detected (the probe laps it again), while a broken
//     one is never reported as a phantom.
//
// The WaitAborted outcome type and its accounting are shared runtime
// plumbing (internal/engine/recovery.go); the fencing below is the
// basic model's own translation of the verdicts.

// WaitAborted describes one outgoing wait edge severed because the
// waited-on peer was declared down (Waiter/Peer are transport
// identities, numerically equal to the id.Proc values).
type WaitAborted = engine.WaitAborted

// PeerDown tells the process that peer is presumed dead (lease expiry,
// ConnPeerDown, or a fault-injection schedule). It severs the outgoing
// wait edge to the peer (reporting it through OnWaitAborted), fences
// every piece of state learned from the dead incarnation, and — if a
// deadlock had been declared — withdraws the declaration and restarts
// detection, since the crash may have broken the declared cycle.
//
// PeerDown is idempotent and safe to call for peers this process never
// interacted with.
func (p *Process) PeerDown(peer id.Proc) {
	var after []func()
	p.run.Exec(func() { after = p.peerDownStep(peer) })
	runAfter(after)
}

// StepPeerDown implements engine.RecoveryLogic: the Host invokes it on
// the owning shard, already serialized.
func (p *Process) StepPeerDown(peer transport.NodeID) {
	runAfter(p.peerDownStep(id.Proc(peer)))
}

func (p *Process) peerDownStep(peer id.Proc) []func() {
	var after []func()
	if _, waiting := p.waitingFor[peer]; waiting {
		delete(p.waitingFor, peer)
		// Invalidate §4.3 delay timers armed for the severed edge: the
		// instance check in Request's timer closure fails against the
		// bumped counter.
		p.edgeInstance[peer]++
		after = p.recovery.Abort(transport.NodeID(peer), after)
		if len(p.waitingFor) == 0 {
			if cb := p.cfg.OnActive; cb != nil {
				after = append(after, func() { cb() })
			}
		}
	}
	// The dead incarnation's unanswered request no longer represents a
	// waiting process; keeping the black edge would let its stale
	// probes look meaningful (§3.2) and could manufacture a phantom
	// cycle through a corpse.
	delete(p.pendingIn, peer)
	// Fence the dead incarnation's detection state: computation numbers
	// it issued and the duplicate-suppression record of WFGD messages
	// we sent it (the restarted incarnation has seen none of them).
	delete(p.latest, peer)
	delete(p.sentWFGD, peer)
	// Permanent-black-path knowledge is only permanent while every
	// process on the path lives (§5 relies on §2.4's persistence). Any
	// path through the dead peer may be gone; edges not incident to it
	// may equally have depended on it upstream, so the whole set is
	// re-derived by the re-initiated computation rather than patched.
	if p.deadlocked || len(p.blackPaths) > 0 {
		p.deadlocked = false
		p.declaredTag = id.Tag{}
		p.blackPaths = make(map[id.Edge]struct{})
		p.sentWFGD = make(map[id.Proc]map[string]struct{})
		if len(p.waitingFor) > 0 {
			p.startProbeStep()
		}
	}
	return after
}

// PeerUp tells the process that peer is reachable again — either an
// outage ended or a restarted incarnation joined. All per-peer fencing
// state is cleared so the fresh incarnation starts from a blank slate:
// in particular its computation numbering restarts at 1, which a stale
// latest-table entry from the previous incarnation would wrongly
// suppress (§4.3 keeps only the newest computation per initiator).
func (p *Process) PeerUp(peer id.Proc) {
	p.run.Exec(func() { p.peerUpStep(peer) })
}

// StepPeerUp implements engine.RecoveryLogic.
func (p *Process) StepPeerUp(peer transport.NodeID) {
	p.peerUpStep(id.Proc(peer))
}

func (p *Process) peerUpStep(peer id.Proc) {
	delete(p.latest, peer)
	delete(p.sentWFGD, peer)
}

// Reannounce re-sends the request for a still-outstanding wait edge to
// a peer that restarted (detected via the transport's incarnation
// change, surfaced as ConnPeerUp). The restarted incarnation lost the
// pending-request entry our original request created; without the
// re-announcement its dependent-set stays empty, probes we initiate
// are discarded as non-meaningful on arrival, and a genuinely
// surviving cycle is never re-detected. The request is marked Rejoin
// so a receiver that *did* keep the edge (the outage was a partition,
// not a crash) treats it as an idempotent no-op instead of a
// duplicate-request protocol error. It reports whether an edge to the
// peer existed to re-announce.
func (p *Process) Reannounce(peer id.Proc) bool {
	var ok bool
	p.run.Exec(func() { ok = p.reannounceStep(peer) })
	return ok
}

// StepReannounce implements engine.ReannouncingLogic.
func (p *Process) StepReannounce(peer transport.NodeID) bool {
	return p.reannounceStep(id.Proc(peer))
}

func (p *Process) reannounceStep(peer id.Proc) bool {
	if _, waiting := p.waitingFor[peer]; !waiting {
		return false
	}
	p.send(peer, msg.Request{Rejoin: true})
	return true
}
