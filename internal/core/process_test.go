package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wfg"
	"repro/internal/workload"
)

// newSystem is a test helper building an n-process simulated system.
func newSystem(t *testing.T, n int, opts workload.BasicOptions) *workload.BasicSystem {
	t.Helper()
	sys, err := workload.NewBasicSystem(n, opts)
	if err != nil {
		t.Fatalf("NewBasicSystem(%d): %v", n, err)
	}
	return sys
}

func TestRingCycleIsDetected(t *testing.T) {
	for _, n := range []int{2, 3, 5, 17, 64} {
		sys := newSystem(t, n, workload.BasicOptions{Seed: 1})
		if err := sys.Apply(workload.Ring(n)); err != nil {
			t.Fatalf("apply ring(%d): %v", n, err)
		}
		sys.Run(1 << 20)
		if len(sys.Detections) == 0 {
			t.Fatalf("ring(%d): no process declared deadlock", n)
		}
		// Every declaration must be truthful (QRP2): the declarer is on
		// a black cycle per the oracle.
		for _, d := range sys.Detections {
			onCycle := false
			sys.Oracle.With(func(g *wfg.Graph) { onCycle = g.OnBlackCycle(d.Proc) })
			if !onCycle {
				t.Errorf("ring(%d): %v declared but oracle says not on black cycle", n, d.Proc)
			}
		}
	}
}

func TestChainNeverDetects(t *testing.T) {
	// A chain has no cycle: no process may ever declare even though all
	// but the last are blocked (until auto-grant unwinds the chain).
	sys := newSystem(t, 10, workload.BasicOptions{Seed: 2, AutoGrant: true})
	if err := sys.Apply(workload.Chain(10)); err != nil {
		t.Fatalf("apply chain: %v", err)
	}
	sys.Run(1 << 20)
	if len(sys.Detections) != 0 {
		t.Fatalf("chain: got %d detections, want 0", len(sys.Detections))
	}
	// The chain must fully unwind: everyone active at quiescence.
	for i, p := range sys.Procs {
		if p.Blocked() {
			t.Errorf("chain: process %d still blocked at quiescence", i)
		}
	}
}

func TestTwoCycleDetectsAtBothOrOne(t *testing.T) {
	// The 2-cycle p0<->p1: both initiate (both add edges); at least one
	// must declare, and any declarer must be on the cycle.
	sys := newSystem(t, 2, workload.BasicOptions{Seed: 3})
	if err := sys.Apply(workload.Ring(2)); err != nil {
		t.Fatal(err)
	}
	sys.Run(1 << 16)
	if len(sys.Detections) == 0 {
		t.Fatal("2-cycle not detected")
	}
}

func TestDetectionLatencyIsOneRingTraversal(t *testing.T) {
	// With fixed latency L and simultaneous initiation, a probe must
	// travel the full ring once: detection at ~ (n+1)*L (request then
	// probe around). Verify the detection time is within [n*L, 3*n*L].
	const n = 8
	latency := sim.Duration(1 * sim.Millisecond)
	sys := newSystem(t, n, workload.BasicOptions{Seed: 4, Latency: transport.FixedLatency(latency)})
	if err := sys.Apply(workload.Ring(n)); err != nil {
		t.Fatal(err)
	}
	sys.Run(1 << 16)
	if len(sys.Detections) == 0 {
		t.Fatal("ring not detected")
	}
	first := sys.Detections[0].At
	lo, hi := sim.Time(n)*latency, 3*sim.Time(n)*latency
	if first < lo || first > hi {
		t.Errorf("detection at %d, want within [%d, %d]", first, lo, hi)
	}
}

func TestNoFalseDetectionUnderChurn(t *testing.T) {
	// Processes request and are granted continuously; no dark cycle
	// ever forms in a chain that keeps unwinding. QRP2 demands zero
	// declarations.
	sys := newSystem(t, 6, workload.BasicOptions{Seed: 5, AutoGrant: true})
	// Repeated chains: each round re-issues a chain after quiescence.
	for round := 0; round < 25; round++ {
		if err := sys.Apply(workload.Chain(6)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		sys.Run(1 << 20)
	}
	if len(sys.Detections) != 0 {
		t.Fatalf("churn: got %d detections, want 0", len(sys.Detections))
	}
	if v := sys.FIFO.Violations(); v != 0 {
		t.Fatalf("FIFO violations: %d", v)
	}
}

func TestMeaningfulProbeRequiresBlackEdge(t *testing.T) {
	// A probe that arrives after the reply (white edge gone) must be
	// discarded. Construct: p0 requests p1; p1 granted; then p1 somehow
	// receives a stale probe from p0 — use manual policy and a raw
	// transport send ordering.
	sched := sim.New(7)
	net := transport.NewSimNet(sched, transport.FixedLatency(sim.Millisecond))
	mk := func(pid id.Proc) *core.Process {
		p, err := core.NewProcess(core.Config{ID: pid, Transport: net, Policy: core.InitiateManually})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p0, p1 := mk(0), mk(1)
	if err := p0.Request(1); err != nil {
		t.Fatal(err)
	}
	// Probe sent immediately after the request: P1 guarantees the
	// request is received first (FIFO), so the probe IS meaningful at
	// p1 — but p1 has no outgoing edges, so nothing propagates and p0
	// never receives anything back.
	if _, ok := p0.StartProbe(); !ok {
		t.Fatal("StartProbe on blocked process returned !ok")
	}
	sched.Run()
	if _, dead := p0.Deadlocked(); dead {
		t.Fatal("p0 declared deadlock with no cycle")
	}
	st := p1.Stats()
	if st.ProbesMeaningful != 1 {
		t.Errorf("p1 meaningful probes = %d, want 1 (FIFO makes probe follow request)", st.ProbesMeaningful)
	}
	// Now grant and send a second probe after p1 replied: the edge is
	// gone by the time the probe arrives, so it must be discarded.
	if err := p1.Grant(0); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if p0.Blocked() {
		t.Fatal("p0 still blocked after grant")
	}
	// p0 is active; a manual probe start reports !ok.
	if _, ok := p0.StartProbe(); ok {
		t.Fatal("StartProbe on active process returned ok")
	}
}

func TestGrantWhileBlockedViolatesG3(t *testing.T) {
	sched := sim.New(8)
	net := transport.NewSimNet(sched, nil)
	p0, err := core.NewProcess(core.Config{ID: 0, Transport: net, Policy: core.InitiateManually})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewProcess(core.Config{ID: 1, Transport: net, Policy: core.InitiateManually}); err != nil {
		t.Fatal(err)
	}
	p2, err := core.NewProcess(core.Config{ID: 2, Transport: net, Policy: core.InitiateManually})
	if err != nil {
		t.Fatal(err)
	}
	// p2 requests p0; p0 requests p1; delivery makes p0 hold p2's
	// request while blocked on p1.
	if err := p2.Request(0); err != nil {
		t.Fatal(err)
	}
	if err := p0.Request(1); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if err := p0.Grant(2); err == nil {
		t.Fatal("Grant while blocked succeeded; G3 requires it to fail")
	}
}

func TestRequestValidation(t *testing.T) {
	sched := sim.New(9)
	net := transport.NewSimNet(sched, nil)
	p0, err := core.NewProcess(core.Config{ID: 0, Transport: net, Policy: core.InitiateManually})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewProcess(core.Config{ID: 1, Transport: net, Policy: core.InitiateManually}); err != nil {
		t.Fatal(err)
	}
	if err := p0.Request(0); err == nil {
		t.Error("self-request succeeded, want error")
	}
	if err := p0.Request(1); err != nil {
		t.Fatal(err)
	}
	if err := p0.Request(1); err == nil {
		t.Error("duplicate edge creation succeeded, want G1 error")
	}
}

func TestLargeRingSoak(t *testing.T) {
	// A 512-process cycle with a single initiator: detection costs
	// exactly N probes. The WFGD computation that follows is the
	// expensive part — §5's messages are whole edge sets, so informing
	// N vertices about N edges moves O(N^2) set entries; the soak
	// guards against anything worse creeping in.
	if testing.Short() {
		t.Skip("soak test")
	}
	const n = 512
	sys := newSystem(t, n, workload.BasicOptions{Seed: 512, Policy: core.InitiateManually})
	if err := sys.Apply(workload.Ring(n)); err != nil {
		t.Fatal(err)
	}
	sys.Run(1 << 22) // deliver the requests
	if _, ok := sys.Procs[0].StartProbe(); !ok {
		t.Fatal("initiator not blocked")
	}
	sys.Run(1 << 26)
	if len(sys.Detections) != 1 {
		t.Fatalf("detections = %d, want exactly 1", len(sys.Detections))
	}
	var probes uint64
	for _, p := range sys.Procs {
		probes += p.Stats().ProbesSent
	}
	if probes != n {
		t.Fatalf("probe volume %d, want exactly N=%d", probes, n)
	}
	// Every ring member ends up knowing the full cycle.
	for _, pid := range []id.Proc{0, n / 2, n - 1} {
		if got := len(sys.Procs[pid].BlackPaths()); got != n {
			t.Fatalf("process %v knows %d edges, want %d", pid, got, n)
		}
	}
}

func TestMultipleDisjointCyclesAllDetected(t *testing.T) {
	// Four independent 5-rings: each must be detected independently,
	// and every member informed. Tag tables stay small (each process
	// only ever sees its own ring's initiators).
	const k, ringN = 4, 5
	sys := newSystem(t, k*ringN, workload.BasicOptions{Seed: 21})
	if err := sys.Apply(workload.MultiRing(k, ringN)); err != nil {
		t.Fatal(err)
	}
	sys.Run(1 << 22)
	declared := sys.DetectedProcs()
	for r := 0; r < k; r++ {
		found := false
		for i := 0; i < ringN; i++ {
			if declared[id.Proc(r*ringN+i)] {
				found = true
			}
		}
		if !found {
			t.Errorf("ring %d: no member declared", r)
		}
	}
	for _, p := range sys.Procs {
		if sz := p.TagTableSize(); sz > ringN-1 {
			t.Errorf("process %v tag table %d exceeds ring bound %d", p.ID(), sz, ringN-1)
		}
	}
	if c := sys.TruthCheck(); c.FP != 0 || c.FN != 0 {
		t.Fatalf("truth check: %v", c)
	}
}

func TestWFGDInformsWholeDeadlockedPortion(t *testing.T) {
	// Ring of 5 with 4 tail processes leading into it: after detection,
	// every permanently blocked vertex must learn exactly the oracle's
	// permanent-black-path edge set (§5).
	sys := newSystem(t, 9, workload.BasicOptions{Seed: 10})
	if err := sys.Apply(workload.RingWithTails(5, 4)); err != nil {
		t.Fatal(err)
	}
	sys.Run(1 << 20)
	if len(sys.Detections) == 0 {
		t.Fatal("ring with tails: not detected")
	}
	var blocked []id.Proc
	sys.Oracle.With(func(g *wfg.Graph) { blocked = g.PermanentlyBlocked() })
	if len(blocked) != 9 {
		t.Fatalf("oracle says %d permanently blocked, want 9", len(blocked))
	}
	declared := sys.DetectedProcs()
	for _, v := range blocked {
		var want []id.Edge
		sys.Oracle.With(func(g *wfg.Graph) { want = g.PermanentBlackEdgesFrom(v) })
		got := sys.Procs[v].BlackPaths()
		if len(got) == 0 && !declared[v] {
			t.Errorf("process %v neither declared nor informed", v)
			continue
		}
		if len(want) != len(got) {
			t.Errorf("process %v: S has %d edges, oracle says %d (got %v want %v)", v, len(got), len(want), got, want)
			continue
		}
		for i := range want {
			if want[i] != got[i] {
				t.Errorf("process %v: S[%d]=%v, oracle %v", v, i, got[i], want[i])
			}
		}
	}
}

func TestDelayedInitiationPolicy(t *testing.T) {
	// With delay T, a cycle is still detected, but never before T.
	const n = 4
	T := 50 * sim.Millisecond
	sys := newSystem(t, n, workload.BasicOptions{
		Seed:   11,
		Policy: core.InitiateAfterDelay,
		Delay:  T,
	})
	if err := sys.Apply(workload.Ring(n)); err != nil {
		t.Fatal(err)
	}
	sys.Run(1 << 16)
	if len(sys.Detections) == 0 {
		t.Fatal("delayed policy missed the cycle")
	}
	if at := sys.Detections[0].At; at < T {
		t.Errorf("detected at %d, before timer T=%d", at, T)
	}
}

func TestDelayedInitiationSuppressesProbesForTransientWaits(t *testing.T) {
	// A chain that unwinds before T elapses must generate zero probes.
	sys := newSystem(t, 5, workload.BasicOptions{
		Seed:      12,
		Policy:    core.InitiateAfterDelay,
		Delay:     sim.Time(10 * sim.Second),
		AutoGrant: true,
	})
	if err := sys.Apply(workload.Chain(5)); err != nil {
		t.Fatal(err)
	}
	sys.Run(1 << 20)
	for i, p := range sys.Procs {
		if st := p.Stats(); st.ProbesSent != 0 {
			t.Errorf("process %d sent %d probes, want 0", i, st.ProbesSent)
		}
	}
}

func TestStaleComputationSuperseded(t *testing.T) {
	// §4.3: a process propagates computation (i,n) then must ignore
	// (i,k) for k <= n. Drive manually on a 3-ring with manual policy.
	sched := sim.New(13)
	net := transport.NewSimNet(sched, transport.FixedLatency(sim.Millisecond))
	procs := make([]*core.Process, 3)
	for i := range procs {
		p, err := core.NewProcess(core.Config{ID: id.Proc(i), Transport: net, Policy: core.InitiateManually})
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
	}
	for i := range procs {
		if err := procs[i].Request(id.Proc((i + 1) % 3)); err != nil {
			t.Fatal(err)
		}
	}
	sched.Run() // requests delivered, ring black
	// Two successive computations from p0: both circulate; the second
	// must be propagated by p1/p2 (newer), and p0 declares on the first
	// meaningful returnee.
	if _, ok := procs[0].StartProbe(); !ok {
		t.Fatal("start 1")
	}
	sched.Run()
	if _, dead := procs[0].Deadlocked(); !dead {
		t.Fatal("p0 did not declare")
	}
	before := procs[1].Stats().ProbesSent
	if _, ok := procs[0].StartProbe(); !ok {
		t.Fatal("start 2")
	}
	sched.Run()
	if after := procs[1].Stats().ProbesSent; after != before+1 {
		t.Errorf("p1 forwarded %d probes for newer computation, want exactly 1", after-before)
	}
	// Tag table holds one entry per initiator seen (only p0 here).
	if got := procs[1].TagTableSize(); got != 1 {
		t.Errorf("p1 tag table size = %d, want 1", got)
	}
}
