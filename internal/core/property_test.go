package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wfg"
)

// scenario builds a fully instrumented system whose OnDeadlock callback
// audits each declaration against the oracle at the instant it happens
// (QRP2 is a statement about that instant, not about quiescence).
type scenario struct {
	sched    *sim.Scheduler
	net      *transport.SimNet
	oracle   *wfg.GraphObserver
	fifo     *trace.FIFOChecker
	procs    []*core.Process
	declared map[id.Proc]bool
	violated []string
}

func newScenario(t *testing.T, n int, seed int64) *scenario {
	t.Helper()
	sc := &scenario{
		sched:    sim.New(seed),
		declared: make(map[id.Proc]bool),
	}
	sc.net = transport.NewSimNet(sc.sched, transport.UniformLatency{Min: 10 * sim.Microsecond, Max: 3 * sim.Millisecond})
	sc.oracle = wfg.NewGraphObserver(nil)
	sc.fifo = trace.NewFIFOChecker(func(s string) { sc.violated = append(sc.violated, s) })
	sc.net.Observe(sc.oracle)
	sc.net.Observe(sc.fifo)
	for i := 0; i < n; i++ {
		pid := id.Proc(i)
		p, err := core.NewProcess(core.Config{
			ID:        pid,
			Transport: sc.net,
			Policy:    core.InitiateOnBlock,
			OnDeadlock: func(id.Tag) {
				// QRP2 audit at the declaration instant.
				onBlack := false
				sc.oracle.With(func(g *wfg.Graph) { onBlack = g.OnBlackCycle(pid) })
				if !onBlack {
					sc.violated = append(sc.violated, "declaration off black cycle: "+pid.String())
				}
				sc.declared[pid] = true
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		sc.procs = append(sc.procs, p)
	}
	return sc
}

// TestRandomScenarioInvariants drives randomized request/grant
// schedules and checks the full invariant set: QRP2 at each
// declaration, QRP1 at quiescence, FIFO delivery, no message loss, and
// WFGD soundness (S sets contain only oracle-permanent edges).
func TestRandomScenarioInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		const n = 14
		sc := newScenario(t, n, seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5bf0))
		// Random request batches at random times; random later grants
		// by processes that happen to be active.
		for i := 0; i < n; i++ {
			pid := id.Proc(i)
			at := sim.Duration(rng.Int63n(int64(4 * sim.Millisecond)))
			k := 1 + rng.Intn(2)
			sc.sched.After(at, func() {
				p := sc.procs[pid]
				if p.Blocked() {
					return
				}
				targets := make([]id.Proc, 0, k)
				seen := map[id.Proc]struct{}{pid: {}}
				for len(targets) < k {
					v := id.Proc(rng.Intn(n))
					if _, dup := seen[v]; dup {
						continue
					}
					seen[v] = struct{}{}
					targets = append(targets, v)
				}
				if err := p.Request(targets...); err != nil {
					panic(err)
				}
			})
		}
		// Grant passes: active processes answer everything pending.
		for round := 0; round < 6; round++ {
			at := sim.Duration(rng.Int63n(int64(20 * sim.Millisecond)))
			sc.sched.After(at, func() {
				for _, p := range sc.procs {
					if !p.Blocked() {
						if _, err := p.GrantAll(); err != nil {
							panic(err)
						}
					}
				}
			})
		}
		for i := 0; i < 1<<22 && sc.sched.Step(); i++ {
		}
		if len(sc.violated) != 0 {
			t.Logf("seed %d: violations: %v", seed, sc.violated)
			return false
		}
		if sc.fifo.Undelivered() != 0 {
			t.Logf("seed %d: %d undelivered", seed, sc.fifo.Undelivered())
			return false
		}
		// QRP1 at quiescence: every dark SCC has a declarer or informed
		// members only if someone on it declared.
		var dark []id.Proc
		sc.oracle.With(func(g *wfg.Graph) { dark = g.DarkCycleVertices() })
		for _, v := range dark {
			if !sc.declared[v] && len(sc.procs[v].BlackPaths()) == 0 {
				t.Logf("seed %d: %v neither declared nor informed", seed, v)
				return false
			}
		}
		// No declaration outside the oracle's dark set.
		darkSet := make(map[id.Proc]bool, len(dark))
		for _, v := range dark {
			darkSet[v] = true
		}
		for v := range sc.declared {
			if !darkSet[v] {
				t.Logf("seed %d: %v declared but not dark at quiescence", seed, v)
				return false
			}
		}
		// WFGD soundness: S_v never contains a non-permanent edge.
		for _, p := range sc.procs {
			edges := p.BlackPaths()
			if len(edges) == 0 {
				continue
			}
			var want map[id.Edge]bool
			sc.oracle.With(func(g *wfg.Graph) {
				want = make(map[id.Edge]bool)
				for _, e := range g.PermanentBlackEdgesFrom(p.ID()) {
					want[e] = true
				}
			})
			for _, e := range edges {
				if !want[e] {
					t.Logf("seed %d: %v has non-permanent edge %v in S", seed, p.ID(), e)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(20260704))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTagTableBoundedByInitiators: a process's table never exceeds the
// number of distinct initiators whose probes it meaningfully received.
func TestTagTableBoundedByInitiators(t *testing.T) {
	prop := func(seed int64) bool {
		const n = 10
		sc := newScenario(t, n, seed)
		rng := rand.New(rand.NewSource(seed))
		// A ring guarantees circulation; extra random edges beyond it.
		for i := 0; i < n; i++ {
			targets := []id.Proc{id.Proc((i + 1) % n)}
			if extra := id.Proc(rng.Intn(n)); int(extra) != i && extra != targets[0] {
				targets = append(targets, extra)
			}
			if err := sc.procs[i].Request(targets...); err != nil {
				panic(err)
			}
		}
		for i := 0; i < 1<<22 && sc.sched.Step(); i++ {
		}
		for _, p := range sc.procs {
			if p.TagTableSize() > n-1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
