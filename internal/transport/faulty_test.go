package transport_test

import (
	"testing"

	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
)

func TestFaultyNetReordersKinds(t *testing.T) {
	sched := sim.New(3)
	net := transport.NewFaultyNet(sched, func(k msg.Kind) sim.Duration {
		if k == msg.KindProbe {
			return 1
		}
		return sim.Millisecond
	})
	checker := trace.NewFIFOChecker(nil)
	net.Observe(checker)
	var order []msg.Kind
	net.Register(2, transport.HandlerFunc(func(_ transport.NodeID, m msg.Message) {
		order = append(order, m.Kind())
	}))
	net.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	net.Send(1, 2, msg.Request{})
	net.Send(1, 2, msg.Probe{})
	sched.Run()
	if len(order) != 2 || order[0] != msg.KindProbe {
		t.Fatalf("order = %v, want probe first (overtake)", order)
	}
	if checker.Violations() == 0 {
		t.Fatal("checker missed the overtake")
	}
}

func TestFaultyNetPanicsOnUnregistered(t *testing.T) {
	sched := sim.New(4)
	net := transport.NewFaultyNet(sched, func(msg.Kind) sim.Duration { return 1 })
	net.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	net.Send(1, 9, msg.Request{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sched.Run()
}

func TestTCPAddrAndSetPeer(t *testing.T) {
	a := transport.NewTCP()
	defer a.Close()
	b := transport.NewTCP()
	defer b.Close()

	got := make(chan msg.Message, 1)
	a.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	// Deref before retaining: pooled frames are recycled once the
	// handler returns.
	b.Register(2, transport.HandlerFunc(func(_ transport.NodeID, m msg.Message) { got <- msg.Deref(m) }))
	if addr := b.Addr(2); addr == "" {
		t.Fatal("no listen address for node 2")
	}
	// Cross-transport: a learns node 2's address explicitly — the
	// genuinely distributed configuration.
	a.SetPeer(2, b.Addr(2))
	a.Send(1, 2, msg.Probe{})
	m := <-got
	if m.Kind() != msg.KindProbe {
		t.Fatalf("got %v", m.Kind())
	}
}

func TestTCPRegisterAddrConflict(t *testing.T) {
	a := transport.NewTCP()
	defer a.Close()
	if err := a.RegisterAddr(1, "127.0.0.1:0", transport.HandlerFunc(func(transport.NodeID, msg.Message) {})); err != nil {
		t.Fatal(err)
	}
	// Binding the same concrete port must fail.
	if err := a.RegisterAddr(2, a.Addr(1), transport.HandlerFunc(func(transport.NodeID, msg.Message) {})); err == nil {
		t.Fatal("duplicate bind succeeded")
	}
}
