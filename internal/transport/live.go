package transport

import (
	"fmt"
	"sync"

	"repro/internal/msg"
)

// Live is the in-process concurrent network: every node gets a mailbox
// with a dedicated dispatcher goroutine, mirroring the paper's
// goroutine-per-process reading of a distributed system. Delivery is
// reliable and FIFO per ordered pair (Go guarantees a single sender's
// enqueues are observed in order). Unlike SimNet it runs in real time,
// so experiment E8 uses it to confirm the simulator's latency shapes on
// actual concurrent hardware.
type Live struct {
	mu        sync.RWMutex
	boxes     map[NodeID]*mailbox
	observers []Observer
	closed    bool
}

// NewLive returns an empty live network.
func NewLive() *Live {
	return &Live{boxes: make(map[NodeID]*mailbox)}
}

// Observe attaches an observer to all subsequent traffic. Observers must
// be attached before Register so dispatchers see them; observer methods
// may be called concurrently from different node dispatchers.
func (l *Live) Observe(o Observer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.observers = append(l.observers, o)
}

// Register implements Transport and starts the node's dispatcher.
func (l *Live) Register(id NodeID, h Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.boxes[id]; dup {
		panic(fmt.Sprintf("live: duplicate registration of node %d", id))
	}
	l.boxes[id] = newMailbox(h, func(d delivery) {
		l.mu.RLock()
		obs := l.observers
		l.mu.RUnlock()
		for _, o := range obs {
			o.OnDeliver(d.from, id, d.m)
		}
		h.HandleMessage(d.from, d.m)
	}, mailboxConfig{})
}

// Send implements Transport.
func (l *Live) Send(from, to NodeID, m msg.Message) {
	if m == nil {
		panic("live: send of nil message")
	}
	l.mu.RLock()
	box, ok := l.boxes[to]
	obs := l.observers
	closed := l.closed
	l.mu.RUnlock()
	if closed {
		return
	}
	if !ok {
		panic(fmt.Sprintf("live: send to unregistered node %d", to))
	}
	for _, o := range obs {
		o.OnSend(from, to, m)
	}
	box.put(delivery{from: from, m: m})
}

// Close stops every dispatcher after its queue drains and waits for all
// of them to exit.
func (l *Live) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	boxes := make([]*mailbox, 0, len(l.boxes))
	for _, b := range l.boxes {
		boxes = append(boxes, b)
	}
	l.mu.Unlock()
	for _, b := range boxes {
		b.close()
	}
}

var _ Transport = (*Live)(nil)
