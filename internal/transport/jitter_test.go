package transport

import (
	"math/rand"
	"testing"
	"time"
)

// TestJitteredDelayBounds pins the jitter window: a backoff sleep is
// drawn from [d/2, d] — never above the nominal delay (the doubling
// schedule's cap stays honest) and never below half of it (retries
// stay spaced out). rnd is injected, so the extremes are exact.
func TestJitteredDelayBounds(t *testing.T) {
	delays := []time.Duration{
		5 * time.Millisecond, 50 * time.Millisecond, time.Second,
	}
	for _, d := range delays {
		if got := jitteredDelay(d, func() float64 { return 0 }); got != d/2 {
			t.Errorf("jitteredDelay(%v, rnd=0) = %v, want %v", d, got, d/2)
		}
		almostOne := func() float64 { return 0.999999 }
		if got := jitteredDelay(d, almostOne); got < d/2 || got > d {
			t.Errorf("jitteredDelay(%v, rnd≈1) = %v, outside [%v, %v]", d, got, d/2, d)
		}
		for i := 0; i < 1000; i++ {
			if got := jitteredDelay(d, rand.Float64); got < d/2 || got > d {
				t.Fatalf("jitteredDelay(%v) = %v, outside [%v, %v]", d, got, d/2, d)
			}
		}
	}
	// Degenerate delays pass through untouched.
	if got := jitteredDelay(0, rand.Float64); got != 0 {
		t.Errorf("jitteredDelay(0) = %v, want 0", got)
	}
	if got := jitteredDelay(1, rand.Float64); got != 1 {
		t.Errorf("jitteredDelay(1) = %v, want 1", got)
	}
}
