package transport_test

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/id"
	"repro/internal/msg"
	"repro/internal/trace"
	"repro/internal/transport"
)

// fastRetry returns options tuned for tests: quick backoff, short
// silent-retry window, errors collected instead of ignored.
func fastRetry(errs *errList) transport.TCPOptions {
	o := transport.TCPOptions{
		DialTimeout: 2 * time.Second,
		RetryBase:   5 * time.Millisecond,
		RetryMax:    50 * time.Millisecond,
	}
	if errs != nil {
		o.OnError = errs.add
	}
	return o
}

// errList collects transport errors concurrently.
type errList struct {
	mu   sync.Mutex
	errs []error
}

func (l *errList) add(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.errs = append(l.errs, err)
}

func (l *errList) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.errs)
}

// bigWFGD builds a frame large enough that a few of them overflow a
// kernel socket buffer pair.
func bigWFGD(n int) msg.WFGD {
	edges := make([]id.Edge, n)
	for i := range edges {
		edges[i] = id.Edge{From: id.Proc(i), To: id.Proc(i + 1)}
	}
	return msg.WFGD{Edges: edges}
}

// TestTCPSendsProgressWhileLinkStalled pins the per-link isolation
// property: one peer that accepts its connection but never reads —
// so the sender's kernel buffer fills and its link goroutine blocks
// mid-write — must not stall Send on that link (it only queues) nor
// delivery on any other link.
func TestTCPSendsProgressWhileLinkStalled(t *testing.T) {
	net_ := transport.NewTCPWithOptions(fastRetry(nil))
	defer net_.Close()

	// The stalled peer: accepts and then never reads, like a remote
	// process wedged with a full receive queue.
	stall, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()
	accepted := make(chan net.Conn, 4)
	go func() {
		for {
			c, err := stall.Accept()
			if err != nil {
				return
			}
			accepted <- c // held open, never read
		}
	}()
	defer func() {
		for {
			select {
			case c := <-accepted:
				c.Close()
			default:
				return
			}
		}
	}()
	net_.SetPeer(7, stall.Addr().String())

	const per = 400
	col := newCollector(per)
	net_.Register(9, col)
	net_.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	net_.Register(2, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))

	// Flood the stalled link with ~16MB so its writer is certainly
	// blocked in the kernel; every Send must return immediately.
	frame := bigWFGD(4000)
	for i := 0; i < 500; i++ {
		net_.Send(1, 7, frame)
	}

	// The healthy link must deliver everything while the other link is
	// wedged.
	for i := 1; i <= per; i++ {
		net_.Send(2, 9, probeSeq(uint64(i)))
	}
	select {
	case <-col.done:
	case <-time.After(15 * time.Second):
		t.Fatalf("healthy link starved behind stalled link: got %d/%d", col.count(), per)
	}
	col.checkFIFO(t)
}

// TestTCPReconnectPreservesFIFO forces every established connection
// to drop mid-stream and checks that the replay/dedup protocol hides
// it: both the classic send/deliver FIFO checker and the receiver-side
// sequence checker must see zero violations, with no frame lost or
// duplicated.
func TestTCPReconnectPreservesFIFO(t *testing.T) {
	var errs errList
	opts := fastRetry(&errs)
	connLog := trace.NewConnLog()
	opts.OnConnEvent = connLog.Add
	net_ := transport.NewTCPWithOptions(opts)
	defer net_.Close()

	checker := trace.NewFIFOChecker(func(s string) { t.Error("fifo violation:", s) })
	seqChecker := trace.NewLinkFIFOChecker(func(s string) { t.Error("seq violation:", s) })
	net_.Observe(checker)
	net_.Observe(seqChecker)

	const half = 150
	col := newCollector(2 * half)
	net_.Register(9, col)
	net_.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))

	for i := 1; i <= half; i++ {
		net_.Send(1, 9, probeSeq(uint64(i)))
	}
	// Wait until the first half has fully arrived, then rip out every
	// connection under the transport.
	waitFor(t, 10*time.Second, func() bool { return col.count() >= half })
	net_.DropConnections()
	for i := half + 1; i <= 2*half; i++ {
		net_.Send(1, 9, probeSeq(uint64(i)))
	}
	select {
	case <-col.done:
	case <-time.After(15 * time.Second):
		t.Fatalf("second half not delivered after reconnect: got %d", col.count())
	}
	col.checkFIFO(t)
	if v := checker.Violations(); v != 0 {
		t.Fatalf("%d FIFO violations across reconnect", v)
	}
	if v := seqChecker.Violations(); v != 0 {
		t.Fatalf("%d sequence violations across reconnect", v)
	}
	if u := checker.Undelivered(); u != 0 {
		t.Fatalf("%d frames lost across reconnect", u)
	}
	st := net_.Stats()
	if st.Reconnects == 0 {
		t.Fatalf("expected at least one reconnect, stats %+v", st)
	}
	if connLog.Count(transport.ConnReconnected) == 0 {
		t.Fatalf("conn log missing reconnect event: %v", connLog.Events())
	}
}

// TestTCPDialRetriesUntilPeerAppears checks peers need not start in
// order: sends to a not-yet-listening address are queued and the link
// keeps re-dialing (re-reading the peer directory) until the listener
// exists.
func TestTCPDialRetriesUntilPeerAppears(t *testing.T) {
	// Reserve an address, then free it so the first dials fail.
	rsv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := rsv.Addr().String()
	rsv.Close()

	var errs errList
	sender := transport.NewTCPWithOptions(fastRetry(&errs))
	defer sender.Close()
	sender.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	sender.SetPeer(5, addr)

	const per = 20
	for i := 1; i <= per; i++ {
		sender.Send(1, 5, probeSeq(uint64(i)))
	}
	time.Sleep(200 * time.Millisecond) // let several dial attempts fail

	receiver := transport.NewTCPWithOptions(fastRetry(&errs))
	defer receiver.Close()
	col := newCollector(per)
	if err := receiver.RegisterAddr(5, addr, col); err != nil {
		t.Skipf("reserved address vanished: %v", err)
	}
	select {
	case <-col.done:
	case <-time.After(15 * time.Second):
		t.Fatalf("queued sends never arrived once peer appeared: got %d", col.count())
	}
	col.checkFIFO(t)
	if st := sender.Stats(); st.DialRetries == 0 {
		t.Fatalf("expected dial retries, stats %+v", st)
	}
}

// TestTCPReadErrorIsSurfacedNotFatal feeds a listener a garbage byte
// stream: the decode error must reach the error callback, kill only
// that connection, and leave the node (and every other link) able to
// receive.
func TestTCPReadErrorIsSurfacedNotFatal(t *testing.T) {
	var errs errList
	net_ := transport.NewTCPWithOptions(fastRetry(&errs))
	defer net_.Close()

	col := newCollector(1)
	net_.Register(9, col)
	net_.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))

	raw, err := net.Dial("tcp", net_.Addr(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("this is not a gob stream")); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	waitFor(t, 10*time.Second, func() bool { return errs.len() > 0 })
	found := false
	errs.mu.Lock()
	for _, e := range errs.errs {
		if strings.Contains(e.Error(), "read for node 9") {
			found = true
		}
	}
	errs.mu.Unlock()
	if !found {
		t.Fatalf("decode failure not surfaced: %v", errs.errs)
	}

	// The node still works after the poisoned connection died.
	net_.Send(1, 9, probeSeq(1))
	select {
	case <-col.done:
	case <-time.After(10 * time.Second):
		t.Fatal("node stopped receiving after a poisoned connection")
	}
	if st := net_.Stats(); st.ReadErrors == 0 {
		t.Fatalf("read error not counted, stats %+v", st)
	}
}

// ringNode is one cmhnode-style participant: its own transport
// instance (as if in its own OS process) plus a protocol engine.
type ringNode struct {
	tcp  *transport.TCP
	proc *core.Process
	seq  *trace.LinkFIFOChecker
}

// recoveryWiring connects transport liveness events to the process's
// crash-recovery API the same way cmhnode does: a ConnPeerUp on a link
// (ack resumed, or the peer's inbox incarnation changed — it
// restarted) clears the per-peer fencing state and re-announces any
// still-outstanding wait edge so the fresh incarnation rebuilds its
// dependent set. The indirection exists because the transport needs
// its options before the process exists.
type recoveryWiring struct {
	mu   sync.Mutex
	proc *core.Process
}

func (r *recoveryWiring) set(p *core.Process) {
	r.mu.Lock()
	r.proc = p
	r.mu.Unlock()
}

func (r *recoveryWiring) onConnEvent(ev transport.ConnEvent) {
	if ev.Kind != transport.ConnPeerUp {
		return
	}
	r.mu.Lock()
	p := r.proc
	r.mu.Unlock()
	if p == nil {
		return
	}
	peer := id.Proc(ev.To)
	p.PeerUp(peer)
	p.Reannounce(peer)
}

func startRingNode(t *testing.T, pid id.Proc, errs *errList, onDeadlock func(id.Tag)) *ringNode {
	t.Helper()
	wiring := &recoveryWiring{}
	opts := fastRetry(errs)
	opts.OnConnEvent = wiring.onConnEvent
	tcp := transport.NewTCPWithOptions(opts)
	seq := trace.NewLinkFIFOChecker(func(s string) { t.Error("seq violation:", s) })
	tcp.Observe(seq)
	proc, err := core.NewProcess(core.Config{
		ID:         pid,
		Transport:  tcp,
		Policy:     core.InitiateManually,
		OnDeadlock: onDeadlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	wiring.set(proc)
	return &ringNode{tcp: tcp, proc: proc, seq: seq}
}

// TestTCPRingSurvivesPeerRestart reproduces the deployment failure the
// old transport answered with panics: a 3-node cmhnode-style ring
// (one transport instance per node, wired by address) in which one
// node is killed mid-run and restarted on a fresh port. The survivors
// must not crash, the restarted node must be re-integrated — the
// sender links detect its fresh inbox incarnation through the ack
// protocol, rebase their streams, and the recovery wiring re-announces
// the surviving wait edges (the acked prefix of the history is pruned,
// so replay alone can no longer rebuild the dependent set) — the
// deadlock must still be detected, and every node's receiver-side FIFO
// checker must stay clean across the reconnects.
func TestTCPRingSurvivesPeerRestart(t *testing.T) {
	var errs errList
	detected := make(chan id.Tag, 1)
	onDeadlock := func(tag id.Tag) {
		select {
		case detected <- tag:
		default:
		}
	}

	n0 := startRingNode(t, 0, &errs, onDeadlock)
	defer n0.tcp.Close()
	n1 := startRingNode(t, 1, &errs, nil)
	n2 := startRingNode(t, 2, &errs, nil)
	defer n2.tcp.Close()

	// Wire the full directory on every instance (requests and probes
	// flow forward, replies and WFGD backward).
	wire := func(tcp *transport.TCP, self transport.NodeID, peers map[transport.NodeID]string) {
		for nid, addr := range peers {
			if nid != self {
				tcp.SetPeer(nid, addr)
			}
		}
	}
	addrs := map[transport.NodeID]string{
		0: n0.tcp.Addr(0), 1: n1.tcp.Addr(1), 2: n2.tcp.Addr(2),
	}
	wire(n0.tcp, 0, addrs)
	wire(n1.tcp, 1, addrs)
	wire(n2.tcp, 2, addrs)

	// Form the cycle 0->1->2->0 and wait until every request arrived.
	if err := n0.proc.Request(1); err != nil {
		t.Fatal(err)
	}
	if err := n1.proc.Request(2); err != nil {
		t.Fatal(err)
	}
	if err := n2.proc.Request(0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool {
		return len(n0.proc.PendingIn()) == 1 && len(n1.proc.PendingIn()) == 1 && len(n2.proc.PendingIn()) == 1
	})

	// Kill node 1: its transport, listener, connections and protocol
	// state all vanish, exactly like an OS process dying.
	n1.tcp.Close()
	time.Sleep(100 * time.Millisecond) // let survivors notice the RSTs

	// A probe initiated while the peer is down must be queued, not
	// lost and not panic anything.
	if _, ok := n0.proc.StartProbe(); !ok {
		t.Fatal("initiator not blocked")
	}

	// Restart node 1 on a fresh port with empty state; it re-issues
	// its own request (so it is blocked) before the survivors learn
	// the new address.
	n1b := startRingNode(t, 1, &errs, nil)
	defer n1b.tcp.Close()
	wire(n1b.tcp, 1, addrs)
	if err := n1b.proc.Request(2); err != nil {
		t.Fatal(err)
	}
	n0.tcp.SetPeer(1, n1b.tcp.Addr(1))
	n2.tcp.SetPeer(1, n1b.tcp.Addr(1))

	// The pending probe now flows through the restarted node; its
	// first ack carries a fresh incarnation, which triggers the rebase
	// and the reannounce that rebuilds pendingIn there. The cycle is
	// still there, so detection must complete. Re-initiate
	// periodically: probes sent before the reannounce landed are
	// rightly discarded as non-meaningful.
	deadline := time.After(20 * time.Second)
	tick := time.NewTicker(300 * time.Millisecond)
	defer tick.Stop()
	var tag id.Tag
wait:
	for {
		select {
		case tag = <-detected:
			break wait
		case <-tick.C:
			n0.proc.StartProbe()
		case <-deadline:
			t.Fatalf("deadlock not re-detected after peer restart (errors: %v)", errs.errs)
		}
	}
	if tag.Initiator != 0 {
		t.Fatalf("detection by wrong initiator: %v", tag)
	}
	for i, n := range []*ringNode{n0, n2, n1b} {
		if v := n.seq.Violations(); v != 0 {
			t.Fatalf("node %d saw %d receiver-side FIFO violations across restart", i, v)
		}
	}
}

// TestTCPStatsSnapshot sanity-checks the counters on a healthy run.
func TestTCPStatsSnapshot(t *testing.T) {
	net_ := transport.NewTCP()
	defer net_.Close()
	col := newCollector(3)
	net_.Register(9, col)
	net_.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	for i := 1; i <= 3; i++ {
		net_.Send(1, 9, probeSeq(uint64(i)))
	}
	<-col.done
	st := net_.Stats()
	if st.Connects != 1 || st.Dials != 1 {
		t.Fatalf("unexpected dial counters: %+v", st)
	}
	if st.Reconnects != 0 || st.Duplicates != 0 || st.Resequenced != 0 {
		t.Fatalf("unexpected failure counters on healthy run: %+v", st)
	}
}

// waitFor polls cond until it holds or the timeout elapses.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
