package transport

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/msg"
)

// ConnEventKind classifies a connection-lifecycle event on the TCP
// transport.
type ConnEventKind int

// Connection-lifecycle event kinds.
const (
	// ConnConnected: an outbound connection for the link was
	// established for the first time.
	ConnConnected ConnEventKind = iota + 1
	// ConnReconnected: an outbound connection was re-established after
	// a failure; the replay buffer was retransmitted.
	ConnReconnected
	// ConnDialRetry: one dial attempt failed and will be retried after
	// backoff.
	ConnDialRetry
	// ConnDialDeadline: dial attempts have failed for longer than the
	// configured DialTimeout; the failure is surfaced through OnError
	// but retries continue (giving up would silently break P4).
	ConnDialDeadline
	// ConnWriteError: a write on an established connection failed; the
	// connection is torn down and re-dialed.
	ConnWriteError
	// ConnReadError: an inbound connection failed mid-stream (peer
	// crash, TCP reset); only that connection is closed.
	ConnReadError
	// ConnPeerClosed: the remote end closed an outbound connection
	// (observed by the link's peer watcher); the link re-dials when
	// there is traffic or history to replay.
	ConnPeerClosed
	// ConnBackpressureOn: a node's ingress mailbox crossed the configured
	// high watermark — the node is not keeping up with its arrival rate.
	ConnBackpressureOn
	// ConnBackpressureOff: the mailbox drained back to half the high
	// watermark.
	ConnBackpressureOff
	// ConnPeerDown: the link's lease on the peer expired — LeaseMisses
	// consecutive lease intervals passed without an acknowledgement, so
	// the peer is presumed crashed (or unreachable, which the lease
	// cannot distinguish; see DESIGN.md §6). Queued frames are retained
	// and retried regardless: the lease is a liveness verdict for the
	// layer above, never a license to drop traffic.
	ConnPeerDown
	// ConnPeerUp: a peer previously declared down acknowledged again,
	// or the peer's inbox incarnation changed — it restarted and lost
	// its protocol state. Inc carries the incarnation observed; the
	// layer above uses the event to re-announce its wait edges.
	ConnPeerUp
)

var connEventNames = map[ConnEventKind]string{
	ConnConnected:       "connected",
	ConnReconnected:     "reconnected",
	ConnDialRetry:       "dial-retry",
	ConnDialDeadline:    "dial-deadline",
	ConnWriteError:      "write-error",
	ConnReadError:       "read-error",
	ConnPeerClosed:      "peer-closed",
	ConnBackpressureOn:  "backpressure-on",
	ConnBackpressureOff: "backpressure-off",
	ConnPeerDown:        "peer-down",
	ConnPeerUp:          "peer-up",
}

// String returns the lower-case name of the kind.
func (k ConnEventKind) String() string {
	if s, ok := connEventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("conn-event(%d)", int(k))
}

// ConnEvent is one connection-lifecycle event, reported through
// TCPOptions.OnConnEvent (the trace package records them).
type ConnEvent struct {
	Kind ConnEventKind
	// From and To identify the link. Read-side events know only the
	// local node; From is 0 there unless the stream identified itself.
	From, To NodeID
	// Addr is the remote address involved, when known.
	Addr string
	// Attempt counts dial attempts within the current connect cycle.
	Attempt int
	// Depth is the mailbox depth at a backpressure transition.
	Depth int
	// Inc is the peer inbox incarnation observed on a ConnPeerUp event
	// (nonzero only there).
	Inc uint64
	// Err describes the failure for error events.
	Err string
}

// String renders the event compactly.
func (e ConnEvent) String() string {
	s := fmt.Sprintf("%v %d->%d", e.Kind, e.From, e.To)
	if e.Addr != "" {
		s += " " + e.Addr
	}
	if e.Attempt > 0 {
		s += fmt.Sprintf(" attempt=%d", e.Attempt)
	}
	if e.Depth > 0 {
		s += fmt.Sprintf(" depth=%d", e.Depth)
	}
	if e.Inc != 0 {
		s += fmt.Sprintf(" inc=%x", e.Inc)
	}
	if e.Err != "" {
		s += ": " + e.Err
	}
	return s
}

// SeqObserver is an optional extension of Observer: an observer that
// also implements it receives the transport-level sequencing of each
// delivered frame (pair epoch and 1-based sequence number). Only
// sequenced transports (TCP) invoke it; the checker in internal/trace
// uses it to verify the reconnect protocol delivers every pair's
// stream gapless and in order.
type SeqObserver interface {
	OnSequencedDeliver(from, to NodeID, epoch, seq uint64, m msg.Message)
}

// TCPOptions tunes the TCP transport's failure handling. The zero
// value selects the defaults noted on each field.
type TCPOptions struct {
	// DialTimeout bounds how long a connect cycle retries silently.
	// Once dial attempts for a link have failed for this long, the
	// failure is surfaced through OnError (and a ConnDialDeadline
	// event); retries continue at RetryMax intervals, because dropping
	// queued frames would silently violate the no-loss axiom P4.
	// Default 15s.
	DialTimeout time.Duration
	// RetryBase is the initial dial backoff; it doubles per failed
	// attempt. Default 25ms.
	RetryBase time.Duration
	// RetryMax caps the dial backoff. Default 1s.
	RetryMax time.Duration
	// OnError receives transport failures (dial deadlines, write
	// errors, read errors) that previously panicked. It may be called
	// concurrently from several link goroutines. nil ignores errors.
	OnError func(error)
	// OnConnEvent receives connection-lifecycle events. nil ignores
	// them.
	OnConnEvent func(ConnEvent)
	// MaxBatch caps how many queued envelopes a link's sender coalesces
	// into one buffered encode + single flush. 1 restores per-frame
	// flushing; batching is safe across connection failures because the
	// reconnect protocol replays written frames and receivers dedup by
	// sequence number. Default 64.
	MaxBatch int
	// MailboxHighWater, when > 0, arms a backpressure signal on every
	// registered node's ingress mailbox: crossing this queued-frame depth
	// emits a ConnBackpressureOn event (and counts in
	// TCPStats.BackpressureEngaged); draining back to half of it emits
	// ConnBackpressureOff. The mailbox stays unbounded either way —
	// refusing delivery would violate the no-loss axiom P4 — the signal
	// exists so operators see overload instead of silent queue growth.
	// Default 0 (disabled).
	MailboxHighWater int
	// LeaseInterval, when > 0, arms the lease-based failure detector on
	// every outbound link: the link sends a lightweight ping control
	// frame on the established connection once per interval (piggybacked
	// on the existing envelope stream — no extra connection), and the
	// receiver answers each ping, plus periodic data deliveries, with a
	// cumulative acknowledgement. A link that sees no acknowledgement
	// for LeaseInterval × LeaseMisses declares the peer down
	// (ConnPeerDown); the first acknowledgement after that declares it
	// up again (ConnPeerUp). The detector is deliberately a *lease*, not
	// an oracle: it cannot distinguish a crashed peer from a partitioned
	// one, so the layer above must treat peer-down as "aborted wait",
	// never as "safe to forget" — the transport itself keeps retrying
	// and never drops frames. Default 0 (disabled).
	LeaseInterval time.Duration
	// LeaseMisses is how many consecutive lease intervals may pass
	// without an acknowledgement before the peer is declared down.
	// Default 3 (when LeaseInterval is set).
	LeaseMisses int
	// Codec selects the wire format outbound links speak. The zero
	// value is msg.WireBinary (the current format); set msg.WireGob when
	// this node must send to peers from the release before the binary
	// codec. Inbound streams are format-sniffed, and acknowledgements
	// answer each inbound stream in its sender's own format, so the
	// option only governs what *this* node's data streams look like.
	Codec msg.WireFormat
	// MaxHeldPerStream caps how many out-of-order frames the receiver's
	// resequencer parks per inbound stream while waiting for a gap to
	// fill. Legitimate reconnects need only the frames written on
	// overlapping connections (bounded by the sender's batch size); a
	// buggy or hostile sender jumping far ahead in sequence space could
	// otherwise pin unbounded memory. Frames beyond the cap are dropped
	// and counted (TCPStats.HeldFramesDropped) — safe, because the
	// sender retains them in its replay buffer until acknowledged and
	// the cumulative ack never covers a dropped frame. Default 4096.
	MaxHeldPerStream int
}

// withDefaults fills unset options.
func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 15 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.LeaseInterval > 0 && o.LeaseMisses <= 0 {
		o.LeaseMisses = 3
	}
	if o.MaxHeldPerStream <= 0 {
		o.MaxHeldPerStream = 4096
	}
	return o
}

// TCPStats is a snapshot of the transport's failure-handling counters.
type TCPStats struct {
	// Dials counts dial attempts; DialRetries the failed ones.
	Dials       int64
	DialRetries int64
	// Connects counts established outbound connections; Reconnects the
	// subset that replaced a failed connection.
	Connects   int64
	Reconnects int64
	// DialDeadlines counts connect cycles that exceeded DialTimeout.
	DialDeadlines int64
	// WriteErrors and ReadErrors count failures on established
	// connections.
	WriteErrors int64
	ReadErrors  int64
	// Replayed counts frames retransmitted after a reconnect;
	// Duplicates counts received frames dropped by the dedup filter;
	// Resequenced counts received frames buffered out of order until
	// their predecessors arrived; HeldFramesDropped counts out-of-order
	// frames discarded because a stream's resequencing buffer was
	// already at TCPOptions.MaxHeldPerStream (the sender's replay
	// re-delivers them, so the drop sheds memory, not frames).
	Replayed          int64
	Duplicates        int64
	Resequenced       int64
	HeldFramesDropped int64
	// HeldFramesPurged counts out-of-order frames discarded because
	// their stream's sender rejoined under a new epoch before the gap
	// ahead of them filled. They are stale by definition — the new
	// epoch restarts the pair's sequence space from 1 — so purging them
	// on the epoch switch frees the resequencing buffer immediately
	// instead of pinning it until MaxHeldPerStream evictions. Kept
	// separate from HeldFramesDropped: a purge is normal rejoin
	// housekeeping, a drop is an overflow worth alarming on.
	HeldFramesPurged int64
	// FramesWritten counts envelopes encoded onto connections; Flushes
	// counts the stream flushes that carried them. With write batching,
	// FramesWritten/Flushes is the achieved coalescing factor.
	// VectorFlushes is the subset of Flushes issued as one gathered
	// writev over the batch's frames (binary codec only); the remainder
	// went through the buffered per-frame encoder.
	FramesWritten int64
	Flushes       int64
	VectorFlushes int64
	// BackpressureEngaged counts mailbox high-watermark crossings;
	// MailboxPeak is the deepest any node's ingress mailbox has been.
	BackpressureEngaged int64
	MailboxPeak         int64
	// HeartbeatsSent counts lease ping control frames written; AcksSent
	// and AcksReceived count acknowledgement control frames on the
	// receive and send sides respectively.
	HeartbeatsSent int64
	AcksSent       int64
	AcksReceived   int64
	// FramesPruned counts replay-buffer frames released because the
	// peer acknowledged delivering them — the memory the ack protocol
	// reclaims.
	FramesPruned int64
	// PeerDowns counts lease expiries (peer declared down); PeerUps
	// counts recoveries, including restart detections via a changed
	// inbox incarnation.
	PeerDowns int64
	PeerUps   int64
}

// tcpCounters is the atomic backing store for TCPStats.
type tcpCounters struct {
	dials, dialRetries, connects, reconnects, dialDeadlines atomic.Int64
	writeErrors, readErrors                                 atomic.Int64
	replayed, duplicates, resequenced, heldDropped          atomic.Int64
	heldPurged                                              atomic.Int64
	framesWritten, flushes, vectorFlushes, backpressure     atomic.Int64
	heartbeats, acksSent, acksReceived, framesPruned        atomic.Int64
	peerDowns, peerUps                                      atomic.Int64
}

func (c *tcpCounters) snapshot() TCPStats {
	return TCPStats{
		Dials:               c.dials.Load(),
		DialRetries:         c.dialRetries.Load(),
		Connects:            c.connects.Load(),
		Reconnects:          c.reconnects.Load(),
		DialDeadlines:       c.dialDeadlines.Load(),
		WriteErrors:         c.writeErrors.Load(),
		ReadErrors:          c.readErrors.Load(),
		Replayed:            c.replayed.Load(),
		Duplicates:          c.duplicates.Load(),
		Resequenced:         c.resequenced.Load(),
		HeldFramesDropped:   c.heldDropped.Load(),
		HeldFramesPurged:    c.heldPurged.Load(),
		FramesWritten:       c.framesWritten.Load(),
		Flushes:             c.flushes.Load(),
		VectorFlushes:       c.vectorFlushes.Load(),
		BackpressureEngaged: c.backpressure.Load(),
		HeartbeatsSent:      c.heartbeats.Load(),
		AcksSent:            c.acksSent.Load(),
		AcksReceived:        c.acksReceived.Load(),
		FramesPruned:        c.framesPruned.Load(),
		PeerDowns:           c.peerDowns.Load(),
		PeerUps:             c.peerUps.Load(),
	}
}
