package transport

import (
	"sync"

	"repro/internal/msg"
)

// delivery is one queued message awaiting dispatch. seq and epoch are
// the sender-assigned frame sequencing of the TCP transport (zero on
// the unsequenced transports); they let sequence-aware observers audit
// the reconnect protocol.
type delivery struct {
	from  NodeID
	m     msg.Message
	seq   uint64
	epoch uint64
}

// mailbox is an unbounded FIFO queue with a single dispatcher goroutine
// that invokes the node's handler one message at a time. A single
// dispatcher gives each node the paper's atomic-step property; the
// unbounded queue means Send never blocks, so a blocked application
// process can never wedge the network (which would violate the
// finite-delivery axiom P4).
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []delivery
	closed  bool
	done    chan struct{}
	handler Handler
	deliver func(d delivery)
}

// newMailbox starts the dispatcher goroutine for handler h. deliver, if
// non-nil, is called in place of h.HandleMessage (used to interpose
// observers).
func newMailbox(h Handler, deliver func(d delivery)) *mailbox {
	mb := &mailbox{
		handler: h,
		done:    make(chan struct{}),
		deliver: deliver,
	}
	mb.cond = sync.NewCond(&mb.mu)
	go mb.loop()
	return mb
}

// put enqueues one delivery. It is safe for concurrent use; enqueue
// order from a single sender is preserved, which is all the FIFO
// per-ordered-pair contract requires.
func (mb *mailbox) put(d delivery) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return
	}
	mb.queue = append(mb.queue, d)
	mb.cond.Signal()
}

// loop dispatches queued deliveries until close.
func (mb *mailbox) loop() {
	defer close(mb.done)
	for {
		mb.mu.Lock()
		for len(mb.queue) == 0 && !mb.closed {
			mb.cond.Wait()
		}
		if mb.closed && len(mb.queue) == 0 {
			mb.mu.Unlock()
			return
		}
		d := mb.queue[0]
		mb.queue = mb.queue[1:]
		mb.mu.Unlock()

		if mb.deliver != nil {
			mb.deliver(d)
		} else {
			mb.handler.HandleMessage(d.from, d.m)
		}
	}
}

// close drains the queue and stops the dispatcher, waiting for it to
// exit.
func (mb *mailbox) close() {
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		<-mb.done
		return
	}
	mb.closed = true
	mb.cond.Signal()
	mb.mu.Unlock()
	<-mb.done
}
