package transport

import (
	"sync"

	"repro/internal/msg"
)

// delivery is one queued message awaiting dispatch. seq and epoch are
// the sender-assigned frame sequencing of the TCP transport (zero on
// the unsequenced transports); they let sequence-aware observers audit
// the reconnect protocol. to is the destination node — per-node
// mailboxes ignore it (their node is fixed), but a host mailbox fed by
// a multiplexed link demultiplexes deliveries by it.
type delivery struct {
	from  NodeID
	to    NodeID
	m     msg.Message
	seq   uint64
	epoch uint64
}

// mailboxConfig tunes a mailbox's optional backpressure signal. The
// zero value disables it.
type mailboxConfig struct {
	// highWater is the queue depth at which the mailbox reports
	// backpressure engaged. It reports release once the dispatcher has
	// drained the queue back to highWater/2 (hysteresis, so a queue
	// oscillating around the mark does not flap the signal). 0 disables
	// the signal entirely.
	highWater int
	// onPressure receives the engage/release transitions with the depth
	// observed at the transition. It is invoked outside the mailbox
	// lock, so it may inspect the mailbox or the owning transport.
	onPressure func(engaged bool, depth int)
}

// minMailboxCap is the smallest ring allocation; the ring never shrinks
// below it, so steady low-traffic mailboxes do not churn allocations.
const minMailboxCap = 16

// shrinkAfterPops is the shrink hysteresis: the ring halves only after
// this many *consecutive* pops each observing the queue at or below a
// quarter of capacity, with the streak reset by every push and every
// resize. Without it, a workload oscillating around a power-of-two
// boundary (push to cap, drain past cap/4, repeat) pays a full-ring
// copy on nearly every cycle; with it, shrinking only happens once the
// queue has demonstrably settled at the smaller size.
const shrinkAfterPops = 32

// mailbox is an unbounded FIFO queue with a single dispatcher goroutine
// that invokes the node's handler one message at a time. A single
// dispatcher gives each node the paper's atomic-step property; the
// unbounded queue means Send never blocks, so a blocked application
// process can never wedge the network (which would violate the
// finite-delivery axiom P4). Because it cannot refuse input, the
// mailbox instead *signals*: an optional high-watermark callback tells
// the owner when a node stops keeping up with its ingress rate.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	// buf is a ring: n queued deliveries starting at head. Pops zero the
	// vacated slot so delivered messages are released to the collector
	// promptly, and the ring shrinks once it is three-quarters empty —
	// unlike the previous queue = queue[1:] slice queue, whose backing
	// array kept every delivered message reachable until the next
	// append-triggered reallocation copied the survivors away.
	buf  []delivery
	head int
	n    int
	// shrinkStreak counts consecutive below-threshold pops toward the
	// shrink hysteresis; resizes counts ring reallocations (test hook
	// for the thrash bound).
	shrinkStreak int
	resizes      int
	// peak is the maximum depth ever observed (surfaced via TCPStats).
	peak      int
	pressured bool
	closed    bool
	done      chan struct{}
	handler   Handler
	deliver   func(d delivery)
	cfg       mailboxConfig
}

// newMailbox starts the dispatcher goroutine for handler h. deliver, if
// non-nil, is called in place of h.HandleMessage (used to interpose
// observers).
func newMailbox(h Handler, deliver func(d delivery), cfg mailboxConfig) *mailbox {
	mb := &mailbox{
		handler: h,
		done:    make(chan struct{}),
		deliver: deliver,
		cfg:     cfg,
	}
	mb.cond = sync.NewCond(&mb.mu)
	go mb.loop()
	return mb
}

// pushLocked appends one delivery to the ring, growing it as needed.
func (mb *mailbox) pushLocked(d delivery) {
	if mb.n == len(mb.buf) {
		grown := 2 * len(mb.buf)
		if grown < minMailboxCap {
			grown = minMailboxCap
		}
		mb.resizeLocked(grown)
	}
	mb.buf[(mb.head+mb.n)%len(mb.buf)] = d
	mb.n++
	mb.shrinkStreak = 0
	if mb.n > mb.peak {
		mb.peak = mb.n
	}
}

// popLocked removes and returns the head delivery, zeroing its slot.
// The ring shrinks by half only after shrinkAfterPops consecutive pops
// saw it three-quarters empty (see the constant for why).
func (mb *mailbox) popLocked() delivery {
	d := mb.buf[mb.head]
	mb.buf[mb.head] = delivery{}
	mb.head = (mb.head + 1) % len(mb.buf)
	mb.n--
	if half := len(mb.buf) / 2; half >= minMailboxCap && mb.n <= len(mb.buf)/4 {
		if mb.shrinkStreak++; mb.shrinkStreak >= shrinkAfterPops {
			mb.resizeLocked(half)
		}
	} else {
		mb.shrinkStreak = 0
	}
	return d
}

// resizeLocked reallocates the ring at the given capacity (>= n),
// compacting the live deliveries to the front.
func (mb *mailbox) resizeLocked(capacity int) {
	buf := make([]delivery, capacity)
	for i := 0; i < mb.n; i++ {
		buf[i] = mb.buf[(mb.head+i)%len(mb.buf)]
	}
	mb.buf = buf
	mb.head = 0
	mb.resizes++
	mb.shrinkStreak = 0
}

// put enqueues one delivery. It is safe for concurrent use; enqueue
// order from a single sender is preserved, which is all the FIFO
// per-ordered-pair contract requires.
func (mb *mailbox) put(d delivery) {
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		return
	}
	mb.pushLocked(d)
	depth := mb.n
	var notify func(bool, int)
	if hw := mb.cfg.highWater; hw > 0 && !mb.pressured && depth >= hw {
		mb.pressured = true
		notify = mb.cfg.onPressure
	}
	mb.cond.Signal()
	mb.mu.Unlock()
	if notify != nil {
		notify(true, depth)
	}
}

// loop dispatches queued deliveries until close.
func (mb *mailbox) loop() {
	defer close(mb.done)
	for {
		mb.mu.Lock()
		for mb.n == 0 && !mb.closed {
			mb.cond.Wait()
		}
		if mb.closed && mb.n == 0 {
			mb.mu.Unlock()
			return
		}
		d := mb.popLocked()
		depth := mb.n
		var notify func(bool, int)
		if mb.pressured && depth <= mb.cfg.highWater/2 {
			mb.pressured = false
			notify = mb.cfg.onPressure
		}
		mb.mu.Unlock()

		if notify != nil {
			notify(false, depth)
		}
		if mb.deliver != nil {
			mb.deliver(d)
		} else {
			mb.handler.HandleMessage(d.from, d.m)
		}
	}
}

// depth returns the number of queued deliveries.
func (mb *mailbox) depth() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.n
}

// capacity returns the current ring allocation (test hook for the
// shrink behaviour).
func (mb *mailbox) capacity() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.buf)
}

// resizeCount returns how many times the ring has been reallocated
// (test hook for the resize-thrash hysteresis).
func (mb *mailbox) resizeCount() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.resizes
}

// peakDepth returns the maximum depth the mailbox ever reached.
func (mb *mailbox) peakDepth() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.peak
}

// close drains the queue and stops the dispatcher, waiting for it to
// exit.
func (mb *mailbox) close() {
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		<-mb.done
		return
	}
	mb.closed = true
	mb.cond.Signal()
	mb.mu.Unlock()
	<-mb.done
}
