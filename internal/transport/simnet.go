package transport

import (
	"fmt"

	"repro/internal/msg"
	"repro/internal/sim"
)

// SimNet is the deterministic simulated network. Every send is assigned
// a delay drawn from the latency model; FIFO order per ordered pair is
// enforced by never scheduling a delivery earlier than the previous
// delivery on the same link, so random delays can never reorder a link.
type SimNet struct {
	sched     *sim.Scheduler
	latency   Latency
	handlers  map[NodeID]Handler
	lastAt    map[link]sim.Time
	observers []Observer
	inFlight  int
}

type link struct {
	from, to NodeID
}

// NewSimNet returns a simulated network on the given scheduler. If
// latency is nil, a fixed 1ms delay is used.
func NewSimNet(sched *sim.Scheduler, latency Latency) *SimNet {
	if latency == nil {
		latency = FixedLatency(sim.Millisecond)
	}
	return &SimNet{
		sched:    sched,
		latency:  latency,
		handlers: make(map[NodeID]Handler),
		lastAt:   make(map[link]sim.Time),
	}
}

// Observe attaches an observer to all subsequent traffic.
func (n *SimNet) Observe(o Observer) { n.observers = append(n.observers, o) }

// Register implements Transport.
func (n *SimNet) Register(id NodeID, h Handler) { n.handlers[id] = h }

// InFlight returns the number of messages sent but not yet delivered.
// Workload drivers use it to detect quiescence.
func (n *SimNet) InFlight() int { return n.inFlight }

// Send implements Transport. Delivery is scheduled on the simulation
// clock at max(now+delay, last delivery on this link) so that the link
// is FIFO regardless of the latency draw.
func (n *SimNet) Send(from, to NodeID, m msg.Message) {
	if m == nil {
		panic("simnet: send of nil message")
	}
	for _, o := range n.observers {
		o.OnSend(from, to, m)
	}
	l := link{from: from, to: to}
	at := n.sched.Now() + n.latency.Sample(n.sched.Rand())
	if prev := n.lastAt[l]; at < prev {
		at = prev
	}
	n.lastAt[l] = at
	n.inFlight++
	n.sched.At(at, func() {
		n.inFlight--
		h, ok := n.handlers[to]
		if !ok {
			panic(fmt.Sprintf("simnet: deliver to unregistered node %d", to))
		}
		for _, o := range n.observers {
			o.OnDeliver(from, to, m)
		}
		h.HandleMessage(from, m)
	})
}

var _ Transport = (*SimNet)(nil)
