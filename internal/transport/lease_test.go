package transport_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/transport"
)

// eventLog collects connection-lifecycle events concurrently and
// counts them by kind.
type eventLog struct {
	mu     sync.Mutex
	events []transport.ConnEvent
}

func (l *eventLog) add(ev transport.ConnEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

func (l *eventLog) count(kind transport.ConnEventKind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// TestTCPAckPrunesReplayBuffer pins the replay-buffer memory bound:
// frames the peer has acknowledged delivering must be released, so
// after the ack exchange settles the history holds only unacked frames
// — and with the lease heartbeat soliciting acks for the tail, it
// drains to zero. Before the ack protocol the buffer retained every
// frame the link ever wrote.
func TestTCPAckPrunesReplayBuffer(t *testing.T) {
	var errs errList
	opts := fastRetry(&errs)
	opts.LeaseInterval = 20 * time.Millisecond
	net_ := transport.NewTCPWithOptions(opts)
	defer net_.Close()

	const n = 200 // several ack strides worth of traffic
	col := newCollector(n)
	net_.Register(9, col)
	net_.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	for i := 1; i <= n; i++ {
		net_.Send(1, 9, probeSeq(uint64(i)))
	}
	select {
	case <-col.done:
	case <-time.After(10 * time.Second):
		t.Fatalf("frames not delivered: got %d", col.count())
	}
	col.checkFIFO(t)

	// Stride acks prune the bulk; the ping-solicited ack collects the
	// tail. The bound under test: history length <= unacked frames, and
	// everything here has been delivered.
	waitFor(t, 10*time.Second, func() bool { return net_.ReplayBufferLen(1, 9) == 0 })

	st := net_.Stats()
	if st.FramesPruned < n {
		t.Fatalf("expected all %d frames pruned eventually, stats %+v", n, st)
	}
	if st.AcksReceived == 0 || st.AcksSent == 0 {
		t.Fatalf("ack exchange missing from stats: %+v", st)
	}
	if st.HeartbeatsSent == 0 {
		t.Fatalf("lease heartbeat never sent: %+v", st)
	}
}

// TestTCPLeaseDetectsPeerDownAndUp drives the failure detector through
// a full outage: kill the receiving transport (its listener, inbox and
// incarnation die), watch the lease expire into a single ConnPeerDown,
// restart the receiver on a fresh port, and watch the first
// acknowledgement of the new incarnation flip the link back up.
func TestTCPLeaseDetectsPeerDownAndUp(t *testing.T) {
	var errs errList
	var log eventLog
	opts := fastRetry(&errs)
	opts.LeaseInterval = 25 * time.Millisecond
	opts.LeaseMisses = 2
	opts.OnConnEvent = log.add
	sender := transport.NewTCPWithOptions(opts)
	defer sender.Close()
	sender.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))

	receiver := transport.NewTCPWithOptions(fastRetry(&errs))
	col := newCollector(1)
	receiver.Register(9, col)
	sender.SetPeer(9, receiver.Addr(9))

	sender.Send(1, 9, probeSeq(1))
	select {
	case <-col.done:
	case <-time.After(10 * time.Second):
		t.Fatal("frame not delivered before the outage")
	}

	// Kill the receiver: acks stop, the lease must expire exactly once.
	receiver.Close()
	waitFor(t, 10*time.Second, func() bool { return log.count(transport.ConnPeerDown) >= 1 })

	// Restart on a fresh port with a fresh incarnation; the next ack
	// must declare the peer up again.
	restarted := transport.NewTCPWithOptions(fastRetry(&errs))
	defer restarted.Close()
	restarted.Register(9, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	sender.SetPeer(9, restarted.Addr(9))
	waitFor(t, 10*time.Second, func() bool { return log.count(transport.ConnPeerUp) >= 1 })

	if down := log.count(transport.ConnPeerDown); down != 1 {
		t.Fatalf("lease expiry fired %d ConnPeerDown events, want exactly 1", down)
	}
	st := sender.Stats()
	if st.PeerDowns != 1 || st.PeerUps < 1 {
		t.Fatalf("peer-liveness counters off: %+v", st)
	}
}

// TestTCPDrainFlushesQueuedFrames checks the graceful-shutdown hook:
// Drain returns true once accepted frames have reached the wire, and
// times out (false) while a link still holds frames it cannot deliver.
func TestTCPDrainFlushesQueuedFrames(t *testing.T) {
	net_ := transport.NewTCPWithOptions(fastRetry(nil))
	defer net_.Close()
	const n = 50
	col := newCollector(n)
	net_.Register(9, col)
	net_.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	for i := 1; i <= n; i++ {
		net_.Send(1, 9, probeSeq(uint64(i)))
	}
	if !net_.Drain(10 * time.Second) {
		t.Fatal("drain timed out with a reachable peer")
	}
	select {
	case <-col.done:
	case <-time.After(10 * time.Second):
		t.Fatalf("drained frames not delivered: got %d", col.count())
	}

	// A frame toward a peer that never appears keeps the transport
	// undrained: the frame may not be dropped (P4), so Drain must
	// report the truth instead of pretending.
	net_.Send(1, 7, probeSeq(1))
	if net_.Drain(150 * time.Millisecond) {
		t.Fatal("drain claimed success with an undeliverable frame queued")
	}
}
