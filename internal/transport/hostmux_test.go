package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/id"
	"repro/internal/msg"
)

// recordingHandler collects deliveries for one node.
type recordingHandler struct {
	mu   sync.Mutex
	got  []msg.Message
	from []NodeID
}

func (h *recordingHandler) HandleMessage(from NodeID, m msg.Message) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.got = append(h.got, m)
	h.from = append(h.from, from)
}

func (h *recordingHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.got)
}

// waitDeadline polls until cond holds or the deadline expires.
func waitDeadline(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHostMuxOneListenerAndLinkPerHostPair is the co-hosting regression
// test: many nodes per host must share ONE listener per host and ONE
// outbound link per ordered host pair, no matter how many node pairs
// converse. Before the mux, each Register opened its own loopback
// listener and each (from,to) pair dialed its own connection.
func TestHostMuxOneListenerAndLinkPerHostPair(t *testing.T) {
	const perHost = 8
	hostA, hostB := NodeID(1001), NodeID(1002)
	ta := NewTCP()
	tb := NewTCP()
	defer ta.Close()
	defer tb.Close()

	if err := ta.ListenHost(hostA, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := tb.ListenHost(hostB, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	// Nodes 0..7 live on host A, 8..15 on host B; both sides share one
	// placement resolver carrying the full assignment.
	sp := StaticPlacement{
		Hosts: map[NodeID]NodeID{},
		Addrs: map[NodeID]string{hostA: ta.HostAddr(hostA), hostB: tb.HostAddr(hostB)},
	}
	for i := 0; i < 2*perHost; i++ {
		host := hostA
		if i >= perHost {
			host = hostB
		}
		sp.Hosts[NodeID(i)] = host
	}
	ta.SetResolver(sp)
	tb.SetResolver(sp)
	handlers := make(map[NodeID]*recordingHandler)
	for i := 0; i < 2*perHost; i++ {
		n := NodeID(i)
		h := &recordingHandler{}
		handlers[n] = h
		if sp.Hosts[n] == hostA {
			ta.Register(n, h)
		} else {
			tb.Register(n, h)
		}
	}

	if got := ta.ListenerCount(); got != 1 {
		t.Fatalf("host A listeners = %d, want 1 (per-node listeners leaked)", got)
	}
	if got := tb.ListenerCount(); got != 1 {
		t.Fatalf("host B listeners = %d, want 1", got)
	}

	// Full bipartite traffic: every A node sends to every B node and
	// vice versa.
	for i := 0; i < perHost; i++ {
		for j := perHost; j < 2*perHost; j++ {
			ta.Send(NodeID(i), NodeID(j), msg.Request{})
			tb.Send(NodeID(j), NodeID(i), msg.Reply{})
		}
	}
	for i := 0; i < 2*perHost; i++ {
		n := NodeID(i)
		waitDeadline(t, 5*time.Second, func() bool { return handlers[n].count() == perHost }, fmt.Sprintf("node %d deliveries", n))
	}

	if got := ta.LinkCount(); got != 1 {
		t.Fatalf("host A outbound links = %d, want 1 (all %d node pairs must share the host link)", got, perHost*perHost)
	}
	if got := tb.LinkCount(); got != 1 {
		t.Fatalf("host B outbound links = %d, want 1", got)
	}
}

// TestHostMuxPerPairFIFO checks that multiplexing many node pairs onto
// one host stream preserves the per-ordered-pair FIFO contract the
// proofs require: each receiver must observe its senders' probes in
// increasing per-pair order even though all pairs interleave on one
// sequence space.
func TestHostMuxPerPairFIFO(t *testing.T) {
	const senders, receivers, perPair = 4, 4, 200
	hostA, hostB := NodeID(2001), NodeID(2002)
	ta := NewTCP()
	tb := NewTCP()
	defer ta.Close()
	defer tb.Close()

	if err := ta.ListenHost(hostA, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := tb.ListenHost(hostB, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	sp := StaticPlacement{
		Hosts: map[NodeID]NodeID{},
		Addrs: map[NodeID]string{hostA: ta.HostAddr(hostA), hostB: tb.HostAddr(hostB)},
	}
	for r := 0; r < receivers; r++ {
		sp.Hosts[NodeID(100+r)] = hostB
	}
	for s := 0; s < senders; s++ {
		sp.Hosts[NodeID(s)] = hostA
	}
	ta.SetResolver(sp)
	tb.SetResolver(sp)

	type rec struct {
		mu   sync.Mutex
		seen map[NodeID][]int
	}
	recs := make(map[NodeID]*rec)
	for r := 0; r < receivers; r++ {
		n := NodeID(100 + r)
		rc := &rec{seen: make(map[NodeID][]int)}
		recs[n] = rc
		tb.Register(n, HandlerFunc(func(from NodeID, m msg.Message) {
			rc.mu.Lock()
			rc.seen[from] = append(rc.seen[from], int(msg.Deref(m).(msg.Probe).Tag.N))
			rc.mu.Unlock()
		}))
	}
	for s := 0; s < senders; s++ {
		ta.Register(NodeID(s), HandlerFunc(func(NodeID, msg.Message) {}))
	}

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for k := 1; k <= perPair; k++ {
				for r := 0; r < receivers; r++ {
					ta.Send(NodeID(s), NodeID(100+r), msg.Probe{Tag: id.Tag{Initiator: 1, N: uint64(k)}})
				}
			}
		}(s)
	}
	wg.Wait()

	for r := 0; r < receivers; r++ {
		n := NodeID(100 + r)
		rc := recs[n]
		waitDeadline(t, 10*time.Second, func() bool {
			rc.mu.Lock()
			defer rc.mu.Unlock()
			total := 0
			for _, s := range rc.seen {
				total += len(s)
			}
			return total == senders*perPair
		}, fmt.Sprintf("receiver %d ingress", n))
		rc.mu.Lock()
		for from, ns := range rc.seen {
			for i := 1; i < len(ns); i++ {
				if ns[i] != ns[i-1]+1 {
					rc.mu.Unlock()
					t.Fatalf("pair %d->%d reordered on the mux: %d after %d", from, n, ns[i], ns[i-1])
				}
			}
		}
		rc.mu.Unlock()
	}
}

// TestHostMuxCoexistsWithLegacyNodes pins the compatibility contract:
// nodes the placement resolver does not know keep the per-node listener
// and per-pair links, and can converse with hosted nodes over the same
// transport instance.
func TestHostMuxCoexistsWithLegacyNodes(t *testing.T) {
	host := NodeID(3001)
	tr := NewTCP()
	defer tr.Close()
	if err := tr.ListenHost(host, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	tr.SetResolver(StaticPlacement{
		Hosts: map[NodeID]NodeID{10: host}, // node 20 unplaced: legacy path
		Addrs: map[NodeID]string{host: tr.HostAddr(host)},
	})

	hosted := &recordingHandler{}
	legacy := &recordingHandler{}
	tr.Register(10, hosted) // no listener
	tr.Register(20, legacy) // legacy loopback listener

	if got := tr.ListenerCount(); got != 2 {
		t.Fatalf("listeners = %d, want 2 (one host, one legacy)", got)
	}

	tr.Send(20, 10, msg.Request{}) // legacy sender -> hosted receiver
	tr.Send(10, 20, msg.Reply{})   // hosted sender -> legacy receiver
	waitDeadline(t, 5*time.Second, func() bool { return hosted.count() == 1 && legacy.count() == 1 }, "cross-path deliveries")

	hosted.mu.Lock()
	from := hosted.from[0]
	hosted.mu.Unlock()
	if from != 20 {
		t.Fatalf("hosted node saw sender %d, want 20 (node identity must survive the mux)", from)
	}
}

// TestHostMuxRegisterRemoteAssignmentPanics pins the misconfiguration
// behaviour: locally registering a node assigned to a host with no
// local listener is a programming error, not silent misrouting.
func TestHostMuxRegisterRemoteAssignmentPanics(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	tr.AssignNode(5, 4001) // host 4001 never listens locally
	defer func() {
		if recover() == nil {
			t.Fatal("Register of a remotely-assigned node did not panic")
		}
	}()
	tr.Register(5, &recordingHandler{})
}
