package transport

// Internal tests for the ring-buffer mailbox: memory reclamation,
// ordering, and the high-watermark backpressure signal.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/msg"
)

// gatedDeliver returns a deliver function that blocks on gate before
// recording each delivery, letting tests build up a queue at will.
func gatedDeliver(gate chan struct{}, got *[]delivery, mu *sync.Mutex) func(delivery) {
	return func(d delivery) {
		<-gate
		mu.Lock()
		*got = append(*got, d)
		mu.Unlock()
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestMailboxCapacityReclaimedAfterBurst(t *testing.T) {
	const burst = 4096
	gate := make(chan struct{})
	var mu sync.Mutex
	var got []delivery
	mb := newMailbox(nil, gatedDeliver(gate, &got, &mu), mailboxConfig{})

	for i := 0; i < burst; i++ {
		mb.put(delivery{from: NodeID(i), m: msg.Request{}})
	}
	if c := mb.capacity(); c < burst {
		t.Fatalf("capacity = %d after burst of %d, want >= burst", c, burst)
	}
	if p := mb.peakDepth(); p < burst-1 {
		t.Fatalf("peakDepth = %d, want >= %d", p, burst-1)
	}
	close(gate)
	waitFor(t, "burst to drain", func() bool { return mb.depth() == 0 })
	// The ring must have shrunk back: a drained mailbox may not pin a
	// burst-sized backing array (the old slice queue kept the whole
	// array — and every delivered message in it — alive).
	if c := mb.capacity(); c > burst/8 {
		t.Fatalf("capacity = %d after drain, want <= %d (ring did not shrink)", c, burst/8)
	}
	mb.close()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != burst {
		t.Fatalf("delivered %d, want %d", len(got), burst)
	}
}

func TestMailboxPreservesFIFO(t *testing.T) {
	const n = 1000
	var mu sync.Mutex
	var got []delivery
	mb := newMailbox(nil, func(d delivery) {
		mu.Lock()
		got = append(got, d)
		mu.Unlock()
	}, mailboxConfig{})
	for i := 0; i < n; i++ {
		mb.put(delivery{from: 1, seq: uint64(i + 1), m: msg.Request{}})
	}
	mb.close() // close drains the queue first
	for i, d := range got {
		if d.seq != uint64(i+1) {
			t.Fatalf("delivery %d has seq %d, want %d", i, d.seq, i+1)
		}
	}
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
}

func TestMailboxBackpressureSignal(t *testing.T) {
	const highWater = 100
	type transition struct {
		engaged bool
		depth   int
	}
	var tmu sync.Mutex
	var transitions []transition
	gate := make(chan struct{})
	var mu sync.Mutex
	var got []delivery
	mb := newMailbox(nil, gatedDeliver(gate, &got, &mu), mailboxConfig{
		highWater: highWater,
		onPressure: func(engaged bool, depth int) {
			tmu.Lock()
			transitions = append(transitions, transition{engaged, depth})
			tmu.Unlock()
		},
	})

	// Fill past the watermark while the dispatcher is blocked: exactly
	// one engage transition, no matter how far past it we go.
	for i := 0; i < 3*highWater; i++ {
		mb.put(delivery{from: 1, m: msg.Request{}})
	}
	tmu.Lock()
	if len(transitions) != 1 || !transitions[0].engaged || transitions[0].depth < highWater {
		t.Fatalf("after fill: transitions = %+v, want one engage at depth >= %d", transitions, highWater)
	}
	tmu.Unlock()

	// Drain: exactly one release, fired at half the watermark.
	close(gate)
	waitFor(t, "queue to drain", func() bool { return mb.depth() == 0 })
	mb.close()
	tmu.Lock()
	defer tmu.Unlock()
	if len(transitions) != 2 {
		t.Fatalf("transitions = %+v, want engage then release", transitions)
	}
	if rel := transitions[1]; rel.engaged || rel.depth > highWater/2 {
		t.Fatalf("release transition %+v, want engaged=false at depth <= %d", rel, highWater/2)
	}
}

func TestMailboxZeroConfigNeverSignals(t *testing.T) {
	fired := false
	mb := newMailbox(nil, func(delivery) {}, mailboxConfig{
		onPressure: func(bool, int) { fired = true },
	})
	for i := 0; i < 100; i++ {
		mb.put(delivery{from: 1, m: msg.Request{}})
	}
	mb.close()
	if fired {
		t.Fatal("onPressure fired with highWater = 0")
	}
}
