package transport_test

// Tests for write-side frame batching and the mailbox backpressure
// signal as observed through the public TCP surface.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/id"
	"repro/internal/msg"
	"repro/internal/transport"
)

// idTag builds a probe tag carrying n as the computation number, which
// the batching tests use as a per-frame ordinal.
func idTag(n uint64) id.Tag { return id.Tag{Initiator: 1, N: n} }

// pollUntil polls cond until it holds or the deadline passes.
func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// sendBurst sends n sequenced probes 1->2 on net_ and waits for the
// recorder to see them all, returning the received computation numbers.
func sendBurst(t *testing.T, net_ *transport.TCP, n int) []uint64 {
	t.Helper()
	var mu sync.Mutex
	var got []uint64
	net_.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	net_.Register(2, transport.HandlerFunc(func(_ transport.NodeID, m msg.Message) {
		mu.Lock()
		got = append(got, msg.Deref(m).(msg.Probe).Tag.N)
		mu.Unlock()
	}))
	for i := 0; i < n; i++ {
		net_.Send(1, 2, msg.Probe{Tag: idTag(uint64(i + 1))})
	}
	pollUntil(t, "burst delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n
	})
	mu.Lock()
	defer mu.Unlock()
	return append([]uint64(nil), got...)
}

func TestBatchedWritesPreserveFIFO(t *testing.T) {
	const n = 5000
	net_ := transport.NewTCPWithOptions(transport.TCPOptions{MaxBatch: 64})
	defer net_.Close()
	got := sendBurst(t, net_, n)
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("frame %d carried N=%d, want %d (batching broke FIFO)", i, v, i+1)
		}
	}
	st := net_.Stats()
	if st.FramesWritten != n {
		t.Fatalf("FramesWritten = %d, want %d", st.FramesWritten, n)
	}
	if st.Flushes >= st.FramesWritten {
		t.Fatalf("Flushes = %d >= FramesWritten = %d: no coalescing happened", st.Flushes, st.FramesWritten)
	}
	if st.VectorFlushes != st.Flushes {
		t.Fatalf("VectorFlushes = %d of %d flushes: the binary codec must take the gathered-write path",
			st.VectorFlushes, st.Flushes)
	}
}

// TestGobLinksSkipVectorPath pins the interop fallback: a link speaking
// the legacy gob codec cannot build an iovec of preframed bytes, so its
// flushes go through the buffered encoder and never count as vectored.
func TestGobLinksSkipVectorPath(t *testing.T) {
	const n = 100
	net_ := transport.NewTCPWithOptions(transport.TCPOptions{Codec: msg.WireGob})
	defer net_.Close()
	got := sendBurst(t, net_, n)
	if len(got) != n {
		t.Fatalf("delivered %d frames, want %d", len(got), n)
	}
	st := net_.Stats()
	if st.VectorFlushes != 0 {
		t.Fatalf("VectorFlushes = %d on a gob link, want 0", st.VectorFlushes)
	}
	if st.Flushes == 0 {
		t.Fatal("no flushes recorded")
	}
}

func TestMaxBatchOneFlushesPerFrame(t *testing.T) {
	const n = 200
	net_ := transport.NewTCPWithOptions(transport.TCPOptions{MaxBatch: 1})
	defer net_.Close()
	got := sendBurst(t, net_, n)
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("frame %d carried N=%d, want %d", i, v, i+1)
		}
	}
	st := net_.Stats()
	if st.FramesWritten != n || st.Flushes != n {
		t.Fatalf("FramesWritten/Flushes = %d/%d, want %d/%d (MaxBatch=1 is per-frame)",
			st.FramesWritten, st.Flushes, n, n)
	}
}

func TestBatchingSurvivesConnectionDrop(t *testing.T) {
	// Frames written in batches across a forced connection drop must
	// still arrive exactly once, in order (replay + dedup under
	// batching).
	const n = 2000
	errs := &errList{}
	o := fastRetry(errs)
	o.MaxBatch = 32
	net_ := transport.NewTCPWithOptions(o)
	defer net_.Close()

	var mu sync.Mutex
	var got []uint64
	net_.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	net_.Register(2, transport.HandlerFunc(func(_ transport.NodeID, m msg.Message) {
		mu.Lock()
		got = append(got, msg.Deref(m).(msg.Probe).Tag.N)
		mu.Unlock()
	}))
	for i := 0; i < n; i++ {
		net_.Send(1, 2, msg.Probe{Tag: idTag(uint64(i + 1))})
		if i == n/2 {
			net_.DropConnections()
		}
	}
	pollUntil(t, "all frames after drop", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n
	})
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("frame %d carried N=%d, want %d (drop broke exactly-once FIFO)", i, v, i+1)
		}
	}
}

func TestMailboxBackpressureSurfacesInStatsAndEvents(t *testing.T) {
	const highWater = 64
	var emu sync.Mutex
	events := map[transport.ConnEventKind]int{}
	o := transport.TCPOptions{
		MailboxHighWater: highWater,
		OnConnEvent: func(e transport.ConnEvent) {
			emu.Lock()
			events[e.Kind]++
			emu.Unlock()
		},
	}
	net_ := transport.NewTCPWithOptions(o)
	defer net_.Close()

	release := make(chan struct{})
	var mu sync.Mutex
	seen := 0
	net_.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	net_.Register(2, transport.HandlerFunc(func(transport.NodeID, msg.Message) {
		<-release // wedge the receiving node so its mailbox fills
		mu.Lock()
		seen++
		mu.Unlock()
	}))
	const n = 4 * highWater
	for i := 0; i < n; i++ {
		net_.Send(1, 2, msg.Probe{Tag: idTag(uint64(i + 1))})
	}
	pollUntil(t, "backpressure to engage", func() bool {
		return net_.Stats().BackpressureEngaged >= 1
	})
	if peak := net_.Stats().MailboxPeak; peak < highWater {
		t.Fatalf("MailboxPeak = %d, want >= %d", peak, highWater)
	}
	close(release)
	pollUntil(t, "wedged node to drain", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return seen == n
	})
	emu.Lock()
	defer emu.Unlock()
	if events[transport.ConnBackpressureOn] == 0 {
		t.Fatal("no ConnBackpressureOn event")
	}
	if events[transport.ConnBackpressureOff] == 0 {
		t.Fatal("no ConnBackpressureOff event")
	}
}
