package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/msg"
)

// TCP is a transport over real TCP sockets. Each registered node gets
// its own listener; a sender keeps exactly one connection per ordered
// (from,to) pair, so TCP's byte-stream ordering yields the FIFO
// per-ordered-pair guarantee the algorithm requires. Frames are
// gob-encoded envelopes (see msg.Encoder).
//
// All nodes may live in one process (the default, used by the livenet
// example and the integration tests) or the directory can be primed
// with remote addresses via SetPeer for genuinely distributed runs.
type TCP struct {
	mu        sync.Mutex
	listeners map[NodeID]net.Listener
	addrs     map[NodeID]string
	conns     map[link]*msg.Encoder
	rawConns  []net.Conn
	boxes     map[NodeID]*mailbox
	observers []Observer
	wg        sync.WaitGroup
	closed    bool
}

// NewTCP returns an empty TCP transport.
func NewTCP() *TCP {
	return &TCP{
		listeners: make(map[NodeID]net.Listener),
		addrs:     make(map[NodeID]string),
		conns:     make(map[link]*msg.Encoder),
		boxes:     make(map[NodeID]*mailbox),
	}
}

// Observe attaches an observer to all subsequent traffic.
func (t *TCP) Observe(o Observer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observers = append(t.observers, o)
}

// SetPeer records the address of a node hosted elsewhere.
func (t *TCP) SetPeer(id NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[id] = addr
}

// Addr returns the listen address of a locally registered node.
func (t *TCP) Addr(id NodeID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addrs[id]
}

// Register implements Transport: it starts a loopback listener for the
// node and an accept loop feeding the node's mailbox.
func (t *TCP) Register(id NodeID, h Handler) {
	if err := t.RegisterAddr(id, "127.0.0.1:0", h); err != nil {
		panic(fmt.Sprintf("tcp: register node %d: %v", id, err))
	}
}

// RegisterAddr registers a node listening on an explicit address.
func (t *TCP) RegisterAddr(id NodeID, addr string, h Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	box := newMailbox(h, func(d delivery) {
		t.mu.Lock()
		obs := t.observers
		t.mu.Unlock()
		for _, o := range obs {
			o.OnDeliver(d.from, id, d.m)
		}
		h.HandleMessage(d.from, d.m)
	})

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		box.close()
		return errors.New("transport closed")
	}
	t.listeners[id] = ln
	t.addrs[id] = ln.Addr().String()
	t.boxes[id] = box
	t.mu.Unlock()

	t.wg.Add(1)
	go t.acceptLoop(ln, box)
	return nil
}

// acceptLoop accepts inbound connections for one node and spawns a
// reader per connection.
func (t *TCP) acceptLoop(ln net.Listener, box *mailbox) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.rawConns = append(t.rawConns, conn)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn, box)
	}
}

// readLoop decodes envelopes from one connection into the mailbox.
func (t *TCP) readLoop(conn net.Conn, box *mailbox) {
	defer t.wg.Done()
	dec := msg.NewDecoder(conn)
	for {
		env, err := dec.Decode()
		if err != nil {
			if err != io.EOF {
				// A torn connection would violate the reliable-delivery
				// axiom; surface it loudly rather than dropping silently.
				t.mu.Lock()
				closed := t.closed
				t.mu.Unlock()
				if !closed {
					panic(fmt.Sprintf("tcp: read: %v", err))
				}
			}
			return
		}
		box.put(delivery{from: NodeID(env.From), m: env.Msg})
	}
}

// Send implements Transport. The first send on an ordered pair dials
// the destination; subsequent sends reuse the connection, preserving
// order. Dial or write failures panic: the algorithm's model has no
// notion of message loss, so a lossy environment is a configuration
// error here.
func (t *TCP) Send(from, to NodeID, m msg.Message) {
	if m == nil {
		panic("tcp: send of nil message")
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	for _, o := range t.observers {
		o.OnSend(from, to, m)
	}
	l := link{from: from, to: to}
	enc, ok := t.conns[l]
	if !ok {
		addr, known := t.addrs[to]
		if !known {
			t.mu.Unlock()
			panic(fmt.Sprintf("tcp: no address for node %d", to))
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.mu.Unlock()
			panic(fmt.Sprintf("tcp: dial node %d at %s: %v", to, addr, err))
		}
		t.rawConns = append(t.rawConns, conn)
		enc = msg.NewEncoder(conn)
		t.conns[l] = enc
	}
	// Encode while holding the lock: envelopes on one connection must
	// not interleave, and per-link mutual exclusion plus lock ordering
	// preserves the FIFO send order.
	err := enc.Encode(msg.Envelope{From: int32(from), To: int32(to), Msg: m})
	t.mu.Unlock()
	if err != nil {
		panic(fmt.Sprintf("tcp: send %d->%d: %v", from, to, err))
	}
}

// Close shuts down listeners, connections and mailboxes and waits for
// every goroutine to exit.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	lns := make([]net.Listener, 0, len(t.listeners))
	for _, ln := range t.listeners {
		lns = append(lns, ln)
	}
	conns := t.rawConns
	boxes := make([]*mailbox, 0, len(t.boxes))
	for _, b := range t.boxes {
		boxes = append(boxes, b)
	}
	t.mu.Unlock()

	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	for _, b := range boxes {
		b.close()
	}
}

var _ Transport = (*TCP)(nil)
