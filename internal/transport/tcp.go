package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/msg"
)

// TCP is a transport over real TCP sockets. Each registered node gets
// its own listener; a sender keeps one outbound link per ordered
// (from,to) pair, each with its own goroutine, queue, mutex and
// encoder, so a slow or unreachable peer stalls only its own link.
// Frames are binary-encoded, sequence-numbered envelopes (see
// msg.Envelope and DESIGN.md §9; TCPOptions.Codec can select the
// legacy gob format for mixed-version interop): the sequence numbers
// let the receiver drop duplicates
// and resequence frames replayed across a re-dialed connection, which
// preserves the per-ordered-pair FIFO guarantee the algorithm's proofs
// require even when connections fail.
//
// Failure handling: dials retry with exponential backoff; write and
// read failures tear down only the affected connection and are
// surfaced through TCPOptions.OnError rather than panicking; every
// frame written on a link is retained and replayed on reconnect, so a
// peer that crashes and restarts receives the link's full history
// (its previous incarnation's state is gone) while a peer that merely
// lost the connection dedups the replay by sequence number.
//
// All nodes may live in one process (the default, used by the livenet
// example and the integration tests) or the directory can be primed
// with remote addresses via SetPeer for genuinely distributed runs.
// SetPeer may also update an address: re-dial cycles re-read the
// directory, so a peer that restarts on a new port is reachable again
// once SetPeer records it.
//
// Host-level multiplexing: a deployment hosting many nodes per OS
// process calls ListenHost once (one listener for the whole host) and
// AssignNode for each node it hosts or knows to be hosted remotely.
// Register then skips the per-node loopback listener for assigned
// nodes, Send routes their traffic over one shared link per ordered
// host pair (Envelope.SrcHost names the stream; From/To still name the
// node endpoints), and the receiving host demultiplexes by Envelope.To.
// Unassigned nodes keep the legacy per-node addressing; both coexist
// on one transport.
type TCP struct {
	opts TCPOptions

	mu        sync.Mutex
	listeners map[NodeID]net.Listener
	addrs     map[NodeID]string
	links     map[link]*outLink
	inConns   []net.Conn
	inboxes   map[NodeID]*inbox
	observers []Observer
	closed    bool

	// Host-multiplexing state: one listener+inbox per local host, an
	// address directory per remote host, the node→host assignment and
	// the handler directory the host inboxes demultiplex into.
	hostLns   map[NodeID]net.Listener
	hostAddrs map[NodeID]string
	hostOf    map[NodeID]NodeID
	handlers  map[NodeID]Handler
	hostBoxes map[NodeID]*inbox

	// resolver, when set, answers placement and address questions the
	// static tables above cannot: node→host from a routing directory,
	// host→addr from a member map. Static entries win, so hand-wired
	// shims and the directory can coexist during the migration window.
	resolver PlacementResolver

	// done unblocks backoff sleeps and dial attempts on Close.
	done  chan struct{}
	wg    sync.WaitGroup
	stats tcpCounters
}

// inbox is the receive side of one registered node: the dispatch
// mailbox plus the per-sender resequencing state that survives
// connection drops (it must outlive any single inbound connection).
//
// inc is the inbox's incarnation, drawn at registration and stamped on
// every acknowledgement: a sender comparing incarnations across acks
// can tell a receiver that restarted (fresh inc, resequencing state
// gone — the link must rebase its stream) from one that merely lost a
// connection (same inc — replay + dedup suffice).
type inbox struct {
	node NodeID
	box  *mailbox
	inc  uint64

	mu    sync.Mutex
	pairs map[streamKey]*pairState
	// lg, when non-nil, journals every committed in-order delivery
	// before it leaves the resequencer (write-ahead of the ack — see
	// DeliveryLog). Set before traffic via SetDeliveryLog.
	lg DeliveryLog
	// sinks memoizes the per-stream lock-free delivery sink (nil when
	// the stream's handler does not provide one, or observers were
	// attached at bind time). Keyed per stream — NOT per pairState —
	// so a sender epoch change keeps its session: frames of the new
	// epoch must flow through the same rings as the old one's, or the
	// two could race each other into the shards.
	sinks map[streamKey]StreamSink
}

// streamKey identifies one inbound frame stream: a sending host (host
// true — every co-hosted node shares the stream) or a single legacy
// sender node. The flag keeps a host id and a node id that happen to
// be numerically equal from aliasing each other's resequencing state.
type streamKey struct {
	id   NodeID
	host bool
}

// pairState resequences one sender's frame stream. Within an epoch,
// sequence numbers start at 1 and increase by 1 per frame; a frame
// below next is a duplicate from a replay, a frame above it is held
// until the gap fills. A new epoch (sender restarted) resets the
// expectation. acked is the highest sequence number already reported
// back to the sender in a cumulative acknowledgement.
type pairState struct {
	epoch uint64
	next  uint64
	acked uint64
	held  map[uint64]heldFrame
}

// heldFrame is one out-of-order frame parked until its gap fills. The
// endpoints ride along because frames of one host stream fan out from
// and to different co-hosted nodes.
type heldFrame struct {
	m        msg.Message
	from, to NodeID
}

// tcpAckStride is how many contiguously delivered frames may accumulate
// before the receiver volunteers a cumulative acknowledgement on a data
// frame (acks are also sent for every ping and for the first frame of a
// new sender epoch). A stride amortizes the ack write across a batch of
// deliveries so the ack protocol does not halve ingress throughput.
const tcpAckStride = 64

// NewTCP returns a TCP transport with default options.
func NewTCP() *TCP { return NewTCPWithOptions(TCPOptions{}) }

// NewTCPWithOptions returns a TCP transport with explicit
// failure-handling options.
func NewTCPWithOptions(o TCPOptions) *TCP {
	return &TCP{
		opts:      o.withDefaults(),
		listeners: make(map[NodeID]net.Listener),
		addrs:     make(map[NodeID]string),
		links:     make(map[link]*outLink),
		inboxes:   make(map[NodeID]*inbox),
		hostLns:   make(map[NodeID]net.Listener),
		hostAddrs: make(map[NodeID]string),
		hostOf:    make(map[NodeID]NodeID),
		handlers:  make(map[NodeID]Handler),
		hostBoxes: make(map[NodeID]*inbox),
		done:      make(chan struct{}),
	}
}

// Observe attaches an observer to all subsequent traffic. Observers
// that also implement SeqObserver additionally receive each delivered
// frame's (epoch, seq) sequencing. Attach observers before traffic
// begins: an inbound stream whose handler provides a lock-free
// StreamSink binds it at the stream's first frame when no observers
// are attached, and a stream already bound stays on the sink path —
// which bypasses delivery callbacks — for its lifetime.
func (t *TCP) Observe(o Observer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observers = append(t.observers, o)
}

// SetPeer records (or updates) the address of a node hosted elsewhere.
func (t *TCP) SetPeer(id NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[id] = addr
}

// Addr returns the listen address of a locally registered node.
func (t *TCP) Addr(id NodeID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addrs[id]
}

// Stats returns a snapshot of the failure-handling counters.
func (t *TCP) Stats() TCPStats {
	s := t.stats.snapshot()
	t.mu.Lock()
	for _, ib := range t.inboxes {
		if p := int64(ib.box.peakDepth()); p > s.MailboxPeak {
			s.MailboxPeak = p
		}
	}
	for _, ib := range t.hostBoxes {
		if p := int64(ib.box.peakDepth()); p > s.MailboxPeak {
			s.MailboxPeak = p
		}
	}
	t.mu.Unlock()
	return s
}

// Register implements Transport. A node assigned to a local host (see
// AssignNode/ListenHost) only records its handler — the host's single
// listener already carries its ingress, so co-hosted nodes do not each
// open a loopback listener. An unassigned node keeps the legacy
// behaviour: its own listener and accept loop.
func (t *TCP) Register(id NodeID, h Handler) {
	t.mu.Lock()
	if host, hosted := t.resolveHostLocked(id); hosted {
		if _, local := t.hostLns[host]; !local {
			if t.resolver != nil && len(t.hostLns) > 0 {
				// Dynamic placement: a migration target registers its
				// shell process while the resolver still maps the node to
				// the old host (routes flip only after the cut). Inbound
				// frames dispatch by destination id, so the handler works
				// regardless of which placement outbound resolution
				// reports; record it and let the routing catch up.
				t.handlers[id] = h
				t.mu.Unlock()
				return
			}
			t.mu.Unlock()
			panic(fmt.Sprintf("tcp: register node %d: assigned to host %d, which has no local listener (ListenHost first, or the node belongs on the remote host)", id, host))
		}
		t.handlers[id] = h
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	if err := t.RegisterAddr(id, "127.0.0.1:0", h); err != nil {
		panic(fmt.Sprintf("tcp: register node %d: %v", id, err))
	}
}

// RegisterAddr registers a node listening on an explicit address.
func (t *TCP) RegisterAddr(id NodeID, addr string, h Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	ib := &inbox{node: id, inc: newEpoch(), pairs: make(map[streamKey]*pairState), sinks: make(map[streamKey]StreamSink)}
	_, retains := h.(MessageRetainer)
	seqh, _ := h.(SequencedHandler)
	ib.box = newMailbox(h, func(d delivery) {
		t.mu.Lock()
		obs := t.observers
		t.mu.Unlock()
		for _, o := range obs {
			o.OnDeliver(d.from, id, d.m)
			if so, ok := o.(SeqObserver); ok && d.seq != 0 {
				so.OnSequencedDeliver(d.from, id, d.epoch, d.seq, d.m)
			}
		}
		if seqh != nil && d.seq != 0 {
			seqh.HandleSequenced(d.from, d.m, d.epoch, d.seq)
		} else {
			h.HandleMessage(d.from, d.m)
		}
		if !retains {
			msg.Recycle(d.m)
		}
	}, mailboxConfig{
		highWater: t.opts.MailboxHighWater,
		onPressure: func(engaged bool, depth int) {
			kind := ConnBackpressureOff
			if engaged {
				kind = ConnBackpressureOn
				t.stats.backpressure.Add(1)
			}
			t.event(ConnEvent{Kind: kind, To: id, Depth: depth})
		},
	})

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		ib.box.close()
		return errors.New("transport closed")
	}
	t.listeners[id] = ln
	t.addrs[id] = ln.Addr().String()
	t.inboxes[id] = ib
	t.handlers[id] = h
	t.mu.Unlock()

	t.wg.Add(1)
	go t.acceptLoop(ln, ib)
	return nil
}

// ListenHost starts the single listener for a local host: one accept
// loop and one inbox carry the ingress of every node later assigned to
// the host via AssignNode. Host ids must be positive (0 is the wire's
// legacy-addressing sentinel) and live in a namespace of their own —
// a host id never collides with a node id even when numerically equal.
func (t *TCP) ListenHost(host NodeID, addr string) error {
	if host <= 0 {
		return fmt.Errorf("listen host %d: host ids must be positive", host)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	ib := &inbox{node: host, inc: newEpoch(), pairs: make(map[streamKey]*pairState), sinks: make(map[streamKey]StreamSink)}
	ib.box = newMailbox(nil, func(d delivery) {
		t.mu.Lock()
		h := t.handlers[d.to]
		obs := t.observers
		t.mu.Unlock()
		if h == nil {
			// A frame for a node the host never registered: droppable
			// misconfiguration, not a crash — the rest of the host's
			// traffic must keep flowing.
			t.report(fmt.Errorf("tcp: host %d received frame for unregistered node %d", host, d.to))
			msg.Recycle(d.m)
			return
		}
		for _, o := range obs {
			o.OnDeliver(d.from, d.to, d.m)
			if so, ok := o.(SeqObserver); ok && d.seq != 0 {
				so.OnSequencedDeliver(d.from, d.to, d.epoch, d.seq, d.m)
			}
		}
		if seqh, ok := h.(SequencedHandler); ok && d.seq != 0 {
			seqh.HandleSequenced(d.from, d.m, d.epoch, d.seq)
		} else {
			h.HandleMessage(d.from, d.m)
		}
		if _, retains := h.(MessageRetainer); !retains {
			msg.Recycle(d.m)
		}
	}, mailboxConfig{
		highWater: t.opts.MailboxHighWater,
		onPressure: func(engaged bool, depth int) {
			kind := ConnBackpressureOff
			if engaged {
				kind = ConnBackpressureOn
				t.stats.backpressure.Add(1)
			}
			t.event(ConnEvent{Kind: kind, To: host, Depth: depth})
		},
	})

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		ib.box.close()
		return errors.New("transport closed")
	}
	if _, dup := t.hostLns[host]; dup {
		t.mu.Unlock()
		ln.Close()
		ib.box.close()
		return fmt.Errorf("listen host %d: already listening", host)
	}
	t.hostLns[host] = ln
	t.hostAddrs[host] = ln.Addr().String()
	t.hostBoxes[host] = ib
	t.mu.Unlock()

	t.wg.Add(1)
	go t.acceptLoop(ln, ib)
	return nil
}

// SetResolver installs the placement resolver consulted whenever the
// static AssignNode/SetHostPeer tables have no entry for a node or
// host. Install it before traffic begins; the resolver is read on every
// Send and each dial cycle, so a live directory (the cluster layer's)
// re-routes links as membership changes without any per-pair wiring.
func (t *TCP) SetResolver(r PlacementResolver) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.resolver = r
}

// resolveHostLocked (t.mu held) maps a node to its owning host: the
// static AssignNode table first, then the placement resolver. ok=false
// means the node uses legacy per-node addressing.
func (t *TCP) resolveHostLocked(node NodeID) (NodeID, bool) {
	if h, ok := t.hostOf[node]; ok {
		return h, true
	}
	if t.resolver != nil {
		return t.resolver.HostOf(node)
	}
	return 0, false
}

// SetHostPeer records (or updates) the address of a host running
// elsewhere. Nodes assigned to that host become reachable through its
// one multiplexed link.
//
// Deprecated: hand-wired host directories are superseded by the
// directory API — install a PlacementResolver (transport.StaticPlacement
// or the cluster layer's Directory) via SetResolver instead. The shim
// remains for one release; static entries still take precedence.
func (t *TCP) SetHostPeer(host NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hostAddrs[host] = addr
}

// HostAddr returns the listen address of a host (local or learned via
// SetHostPeer).
func (t *TCP) HostAddr(host NodeID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hostAddrs[host]
}

// AssignNode pins a node to a host. Outbound traffic to the node rides
// the shared per-host-pair link, and a local Register of the node skips
// the per-node listener. Assign before registering or sending; the
// assignment of a remote node routes sends, the assignment of a local
// node additionally suppresses its loopback listener.
//
// Deprecated: per-node pinning is superseded by the directory API —
// install a PlacementResolver (transport.StaticPlacement or the cluster
// layer's Directory) via SetResolver instead. The shim remains for one
// release; static assignments still take precedence over the resolver.
func (t *TCP) AssignNode(node, host NodeID) {
	if host <= 0 {
		panic(fmt.Sprintf("tcp: assign node %d: host ids must be positive, got %d", node, host))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hostOf[node] = host
}

// ListenerCount reports how many TCP listeners the transport holds open
// (per-node legacy listeners plus per-host multiplexed ones). The
// co-hosting regression tests pin this to one per host.
func (t *TCP) ListenerCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.listeners) + len(t.hostLns)
}

// LinkCount reports how many outbound links exist. Co-hosted traffic
// between two hosts shares one link per direction regardless of how
// many node pairs converse.
func (t *TCP) LinkCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.links)
}

// acceptLoop accepts inbound connections for one node and spawns a
// reader per connection.
func (t *TCP) acceptLoop(ln net.Listener, ib *inbox) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inConns = append(t.inConns, conn)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn, ib)
	}
}

// readLoop decodes envelopes from one connection into the node's
// resequencer and writes acknowledgements back on the same connection
// (the return path of the sender's stream — its watch goroutine
// consumes them). A decode failure (peer crash, TCP reset, corrupt
// frame) closes only this connection and is surfaced through OnError —
// the link's sender will replay anything the failure swallowed on its
// next connection, so co-hosted nodes and other links keep running. A
// failed ack write is ignored: the connection is already dying and the
// sender re-solicits acknowledgement with its next ping.
func (t *TCP) readLoop(conn net.Conn, ib *inbox) {
	defer t.wg.Done()
	dec := msg.NewPooledDecoder(conn)
	var enc *msg.Encoder // created on first ack
	for {
		env, err := dec.Decode()
		if err != nil {
			if err != io.EOF && !t.isClosed() {
				t.stats.readErrors.Add(1)
				t.event(ConnEvent{Kind: ConnReadError, To: ib.node,
					Addr: conn.RemoteAddr().String(), Err: err.Error()})
				t.report(fmt.Errorf("tcp: read for node %d from %s: %w", ib.node, conn.RemoteAddr(), err))
			}
			conn.Close()
			return
		}
		if ack, due := t.receive(ib, env); due {
			if enc == nil {
				// Answer in whatever format the sender speaks (sniffed
				// from its stream), so a legacy gob peer understands the
				// acknowledgements during the migration window.
				enc = msg.NewEncoderFormat(conn, dec.Format())
			}
			if werr := enc.Encode(ack); werr == nil {
				t.stats.acksSent.Add(1)
			}
		}
	}
}

// receive runs the dedup/resequencing protocol for one frame and
// delivers everything that is now in order. Delivery happens under
// ib.mu so frames of one pair arriving on overlapping connections
// (old one draining while the replacement is live) cannot interleave;
// mailbox.put never blocks, so the lock is never held across slow work.
//
// The return value is the acknowledgement due back to the sender, if
// any: every ping is answered (that is the lease heartbeat), the first
// frame of a new sender epoch is acknowledged immediately (so a sender
// talking to a restarted receiver learns the new incarnation fast),
// and after that a cumulative ack is volunteered once per tcpAckStride
// contiguous deliveries.
func (t *TCP) receive(ib *inbox, env msg.Envelope) (msg.Envelope, bool) {
	from := NodeID(env.From)
	to := NodeID(env.To)
	// A nonzero SrcHost marks a host stream: every co-hosted sender
	// shares it, so the resequencer keys on the host, not the node.
	key := streamKey{id: from}
	if env.SrcHost != 0 {
		key = streamKey{id: NodeID(env.SrcHost), host: true}
	}
	switch env.Ctl {
	case msg.CtlPing:
		ib.mu.Lock()
		defer ib.mu.Unlock()
		return ib.ackLocked(key, env.Epoch), true
	case msg.CtlAck:
		return msg.Envelope{}, false // acks belong on outbound return paths; ignore
	}
	if env.Seq == 0 { // unsequenced sender: deliver as-is, nothing to ack
		ib.box.put(delivery{from: from, to: to, m: env.Msg})
		return msg.Envelope{}, false
	}
	ib.mu.Lock()
	defer ib.mu.Unlock()
	ps := ib.pairs[key]
	fresh := ps == nil || ps.epoch != env.Epoch
	if fresh {
		// First frame of a (possibly new) sender incarnation: expect its
		// stream from the beginning. Replays always restart at seq 1.
		// Frames the old incarnation left parked in the resequencer are
		// stale — the new epoch restarts the pair's sequence space, so
		// their gaps can never fill — and are purged here rather than
		// left to age out one MaxHeldPerStream eviction at a time (a
		// restart storm would otherwise pin a full parking lot per
		// stream, and a numerically colliding sequence number could
		// even replay a stale frame into the new epoch's stream).
		if ps != nil && len(ps.held) > 0 {
			for _, hf := range ps.held {
				msg.Recycle(hf.m)
			}
			t.stats.heldPurged.Add(int64(len(ps.held)))
		}
		ps = &pairState{epoch: env.Epoch, next: 1, held: make(map[uint64]heldFrame)}
		ib.pairs[key] = ps
	}
	switch {
	case env.Seq < ps.next:
		t.stats.duplicates.Add(1)
		msg.Recycle(env.Msg)
		return ib.ackLocked(key, env.Epoch), true
	case env.Seq > ps.next:
		switch _, dup := ps.held[env.Seq]; {
		case dup:
			// A replayed copy of a frame already parked: drop the copy.
			msg.Recycle(env.Msg)
		case len(ps.held) >= t.opts.MaxHeldPerStream:
			// The stream's parking lot is full — a buggy or hostile
			// sender far ahead of its own sequence space could
			// otherwise pin unbounded memory here. Dropping is safe:
			// the cumulative ack never covers this frame, so the
			// sender's replay buffer re-delivers it once the gap
			// actually fills (or the connection cycles).
			t.stats.heldDropped.Add(1)
			msg.Recycle(env.Msg)
			return msg.Envelope{}, false
		default:
			ps.held[env.Seq] = heldFrame{m: env.Msg, from: from, to: to}
			t.stats.resequenced.Add(1)
		}
		if fresh {
			return ib.ackLocked(key, env.Epoch), true
		}
		return msg.Envelope{}, false
	}
	t.deliverLocked(ib, key, delivery{from: from, to: to, m: env.Msg, seq: ps.next, epoch: ps.epoch})
	ps.next++
	for {
		hf, ok := ps.held[ps.next]
		if !ok {
			break
		}
		delete(ps.held, ps.next)
		t.deliverLocked(ib, key, delivery{from: hf.from, to: hf.to, m: hf.m, seq: ps.next, epoch: ps.epoch})
		ps.next++
	}
	if fresh || ps.next-1 >= ps.acked+tcpAckStride {
		return ib.ackLocked(key, env.Epoch), true
	}
	return msg.Envelope{}, false
}

// sinkLocked (ib.mu held) resolves the stream's lock-free delivery
// sink, binding it on first use. A stream binds at its first sequenced
// data frame: if the destination's handler provides sinks and no
// observers are attached, every subsequent in-order frame of the
// stream bypasses the dispatch mailbox. The nil verdict is memoized
// too — a stream is either on the sink path or the mailbox path for
// its whole life, never both, so the two can never reorder against
// each other. Streams whose first frame targets a not-yet-registered
// node stay unmemoized and retry the bind on the next frame.
func (t *TCP) sinkLocked(ib *inbox, key streamKey, to NodeID) StreamSink {
	if sink, resolved := ib.sinks[key]; resolved {
		return sink
	}
	t.mu.Lock()
	h := t.handlers[to]
	observed := len(t.observers) > 0
	t.mu.Unlock()
	if h == nil {
		return nil
	}
	var sink StreamSink
	if sp, ok := h.(SinkProvider); ok && !observed {
		sink = sp.BindStream()
	}
	ib.sinks[key] = sink
	return sink
}

// deliverLocked (ib.mu held) hands one in-order frame to the stream's
// sink when it has one, else to the dispatch mailbox. When a delivery
// log is attached the frame is journaled first — this is the single
// choke point both delivery paths share, and it runs before readLoop
// writes the acknowledgement, which is what makes the log write-ahead.
func (t *TCP) deliverLocked(ib *inbox, key streamKey, d delivery) {
	if ib.lg != nil {
		ib.lg.LogDelivery(key.id, key.host, d.epoch, d.seq, d.from, d.to, d.m)
	}
	if sink := t.sinkLocked(ib, key, d.to); sink != nil && sink.DeliverStream(d.from, d.to, d.m) {
		return
	}
	ib.box.put(d)
}

// ackLocked (ib.mu held) builds the cumulative acknowledgement for one
// sender epoch: the highest contiguously delivered sequence number of
// that epoch (0 if the inbox has no state for it), stamped with the
// inbox incarnation.
func (ib *inbox) ackLocked(key streamKey, epoch uint64) msg.Envelope {
	var ackTo uint64
	if ps := ib.pairs[key]; ps != nil && ps.epoch == epoch {
		ackTo = ps.next - 1
		ps.acked = ackTo
	}
	return msg.Envelope{
		From: int32(ib.node), To: int32(key.id),
		Epoch: epoch, Ctl: msg.CtlAck, Ack: ackTo, Inc: ib.inc,
	}
}

// Send implements Transport. It stamps the message with the link's
// next sequence number and enqueues it on the link's sender goroutine;
// it never blocks on the network and never panics on peer failure
// (dial and write errors are retried and surfaced through OnError).
// The first send on an ordered pair creates the link.
func (t *TCP) Send(from, to NodeID, m msg.Message) {
	t.send(0, from, to, m)
}

// SendFromHost implements HostSender: the frame rides srcHost's own
// outbound stream to the destination's host, regardless of which host
// the nominal sender resolves to. Migration forwarding is the one
// caller: host A relays frames for a moved process on A's own stream so
// they can never interleave with the original sender's future direct
// stream to the new host.
func (t *TCP) SendFromHost(srcHost, from, to NodeID, m msg.Message) {
	if srcHost <= 0 {
		panic(fmt.Sprintf("tcp: send from host %d: host ids must be positive", srcHost))
	}
	t.send(srcHost, from, to, m)
}

// send stamps the message with the link's next sequence number and
// enqueues it; pinnedSrc, when nonzero, overrides the sender-side host
// resolution (see SendFromHost).
func (t *TCP) send(pinnedSrc, from, to NodeID, m msg.Message) {
	if m == nil {
		panic("tcp: send of nil message")
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	obs := t.observers
	// Resolve the link endpoints through the host assignment: traffic
	// from/to a hosted node rides the per-host-pair link (one shared
	// stream, stamped with SrcHost), everything else keeps the legacy
	// per-node-pair link.
	srcKey, srcHost := from, int32(0)
	if pinnedSrc != 0 {
		srcKey, srcHost = pinnedSrc, int32(pinnedSrc)
	} else if h, hosted := t.resolveHostLocked(from); hosted {
		srcKey, srcHost = h, int32(h)
	}
	dstKey, dstIsHost := to, false
	if h, hosted := t.resolveHostLocked(to); hosted {
		dstKey, dstIsHost = h, true
	}
	k := link{from: srcKey, to: dstKey}
	l, ok := t.links[k]
	if !ok {
		l = newOutLink(t, srcKey, dstKey, srcHost, dstIsHost)
		t.links[k] = l
		t.wg.Add(1)
		go l.run()
		if t.opts.LeaseInterval > 0 {
			t.wg.Add(1)
			go l.leaseLoop()
		}
	}
	t.mu.Unlock()

	// Enqueue and notify observers under the link lock so the observed
	// send order matches the sequence numbers on the wire.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.seq++
	l.queue = append(l.queue, msg.Envelope{
		From: int32(from), To: int32(to), SrcHost: srcHost, Seq: l.seq, Epoch: l.epoch, Msg: m,
	})
	for _, o := range obs {
		o.OnSend(from, to, m)
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// ReplayBufferLen reports how many written-but-unacknowledged frames
// the (from,to) link currently retains for replay (0 if the link does
// not exist). The acceptance bound for the ack protocol — history
// length never exceeds the unacked window after an ack exchange — is
// asserted against this.
func (t *TCP) ReplayBufferLen(from, to NodeID) int {
	t.mu.Lock()
	l := t.links[link{from: from, to: to}]
	t.mu.Unlock()
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sent)
}

// DropConnections forcibly closes every established connection, both
// inbound and outbound, without closing the transport — simulating a
// network blip. Links re-dial and replay; receivers dedup; the FIFO
// contract holds across the drop. Intended for tests and fault drills.
func (t *TCP) DropConnections() {
	t.mu.Lock()
	conns := t.inConns
	t.inConns = nil
	links := make([]*outLink, 0, len(t.links))
	for _, l := range t.links {
		links = append(links, l)
	}
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	for _, l := range links {
		l.breakConn()
	}
}

// Drain blocks until every link has flushed its accepted frames to the
// wire, or the timeout elapses; it reports whether the transport fully
// drained. Graceful shutdown uses it so batched writes still queued on
// link goroutines reach the peers before Close tears the links down
// (Close itself drops queued frames — the transport is exiting).
// Frames queued toward an unreachable peer keep the transport
// undrained until the deadline; callers decide whether that is worth
// reporting.
func (t *TCP) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		t.mu.Lock()
		links := make([]*outLink, 0, len(t.links))
		for _, l := range t.links {
			links = append(links, l)
		}
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return false
		}
		idle := true
		for _, l := range links {
			l.mu.Lock()
			if !l.closed && len(l.queue) > 0 {
				idle = false
			}
			l.mu.Unlock()
			if !idle {
				break
			}
		}
		if idle {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		select {
		case <-time.After(2 * time.Millisecond):
		case <-t.done:
			return false
		}
	}
}

// report surfaces a transport error through the configured callback.
func (t *TCP) report(err error) {
	if cb := t.opts.OnError; cb != nil {
		cb(err)
	}
}

// event publishes a connection-lifecycle event.
func (t *TCP) event(ev ConnEvent) {
	if cb := t.opts.OnConnEvent; cb != nil {
		cb(ev)
	}
}

// peerAddr looks up the current directory entry for a link target —
// the host directory for multiplexed links, the node directory for
// legacy ones.
func (t *TCP) peerAddr(id NodeID, host bool) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if host {
		if addr, ok := t.hostAddrs[id]; ok {
			return addr, ok
		}
		if t.resolver != nil {
			return t.resolver.AddrOf(id)
		}
		return "", false
	}
	addr, ok := t.addrs[id]
	return addr, ok
}

// isClosed reports whether Close has begun.
func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// Close shuts down listeners, links, connections and mailboxes and
// waits for every goroutine to exit.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	close(t.done)
	lns := make([]net.Listener, 0, len(t.listeners)+len(t.hostLns))
	for _, ln := range t.listeners {
		lns = append(lns, ln)
	}
	for _, ln := range t.hostLns {
		lns = append(lns, ln)
	}
	conns := t.inConns
	links := make([]*outLink, 0, len(t.links))
	for _, l := range t.links {
		links = append(links, l)
	}
	boxes := make([]*mailbox, 0, len(t.inboxes)+len(t.hostBoxes))
	for _, ib := range t.inboxes {
		boxes = append(boxes, ib.box)
	}
	for _, ib := range t.hostBoxes {
		boxes = append(boxes, ib.box)
	}
	t.mu.Unlock()

	for _, ln := range lns {
		ln.Close()
	}
	for _, l := range links {
		l.close()
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	for _, b := range boxes {
		b.close()
	}
}

var (
	_ Transport  = (*TCP)(nil)
	_ HostSender = (*TCP)(nil)
)
