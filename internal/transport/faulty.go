package transport

import (
	"fmt"

	"repro/internal/msg"
	"repro/internal/sim"
)

// FaultyNet is a deliberately broken simulated network used by the
// failure-injection tests: it assigns each message a delay from a
// per-kind latency model and does NOT enforce FIFO per ordered pair, so
// a fast kind can overtake a slow one on the same link. This violates
// the paper's delivery assumption (and hence axioms P1/P2); the tests
// use it to show the assumption is necessary, not decorative — a probe
// that overtakes its request is discarded as non-meaningful and the
// deadlock goes undetected.
type FaultyNet struct {
	sched     *sim.Scheduler
	kindDelay func(k msg.Kind) sim.Duration
	handlers  map[NodeID]Handler
	observers []Observer
}

// NewFaultyNet builds a faulty network; kindDelay maps each message
// kind to its fixed delay (no ordering floor is applied).
func NewFaultyNet(sched *sim.Scheduler, kindDelay func(k msg.Kind) sim.Duration) *FaultyNet {
	return &FaultyNet{
		sched:     sched,
		kindDelay: kindDelay,
		handlers:  make(map[NodeID]Handler),
	}
}

// Observe attaches an observer (the FIFO checker, which must flag the
// violations this transport produces).
func (n *FaultyNet) Observe(o Observer) { n.observers = append(n.observers, o) }

// Register implements Transport.
func (n *FaultyNet) Register(id NodeID, h Handler) { n.handlers[id] = h }

// Send implements Transport without the FIFO clamp.
func (n *FaultyNet) Send(from, to NodeID, m msg.Message) {
	if m == nil {
		panic("faultynet: send of nil message")
	}
	for _, o := range n.observers {
		o.OnSend(from, to, m)
	}
	n.sched.After(n.kindDelay(m.Kind()), func() {
		h, ok := n.handlers[to]
		if !ok {
			panic(fmt.Sprintf("faultynet: deliver to unregistered node %d", to))
		}
		for _, o := range n.observers {
			o.OnDeliver(from, to, m)
		}
		h.HandleMessage(from, m)
	})
}

var _ Transport = (*FaultyNet)(nil)
