package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/id"
	"repro/internal/msg"
)

// TestEpochChangePurgesHeldFrames is the regression test for the
// resequencer leak: frames parked out of order under epoch N must
// vanish the moment the sender rejoins under epoch N+1 — counted by
// HeldFramesPurged (not HeldFramesDropped) and never delivered into
// the new epoch's stream, even when their sequence numbers collide
// with live ones.
func TestEpochChangePurgesHeldFrames(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()

	var mu sync.Mutex
	var seen []uint64
	if err := tr.RegisterAddr(2, "127.0.0.1:0", HandlerFunc(func(_ NodeID, m msg.Message) {
		mu.Lock()
		seen = append(seen, msg.Deref(m).(msg.Probe).Tag.N)
		mu.Unlock()
	})); err != nil {
		t.Fatal(err)
	}
	ib := tr.inboxes[2]

	probe := func(n uint64) msg.Message { return &msg.Probe{Tag: id.Tag{Initiator: 1, N: n}} }
	env := func(epoch, seq, n uint64) msg.Envelope {
		return msg.Envelope{From: 1, To: 2, Seq: seq, Epoch: epoch, Msg: probe(n)}
	}

	// Epoch 7: seq 1 delivers; seq 3 and 4 park behind the gap at 2.
	tr.receive(ib, env(7, 1, 101))
	tr.receive(ib, env(7, 3, 103))
	tr.receive(ib, env(7, 4, 104))
	if got := tr.Stats().Resequenced; got != 2 {
		t.Fatalf("Resequenced = %d, want 2", got)
	}
	ib.mu.Lock()
	held := len(ib.pairs[streamKey{id: 1}].held)
	ib.mu.Unlock()
	if held != 2 {
		t.Fatalf("held = %d frames, want 2", held)
	}

	// The sender rejoins under epoch 9. Its first frame must purge the
	// stale parking lot in the same step.
	tr.receive(ib, env(9, 1, 201))
	s := tr.Stats()
	if s.HeldFramesPurged != 2 {
		t.Fatalf("HeldFramesPurged = %d, want 2", s.HeldFramesPurged)
	}
	if s.HeldFramesDropped != 0 {
		t.Fatalf("HeldFramesDropped = %d, want 0 — purges must not count as drops", s.HeldFramesDropped)
	}
	ib.mu.Lock()
	ps := ib.pairs[streamKey{id: 1}]
	held = len(ps.held)
	epoch := ps.epoch
	ib.mu.Unlock()
	if held != 0 || epoch != 9 {
		t.Fatalf("after rejoin: held=%d epoch=%d, want 0 held under epoch 9", held, epoch)
	}

	// Sequence numbers 3 and 4 of the new epoch collide with the purged
	// frames': they must deliver the new payloads, never the stale ones.
	tr.receive(ib, env(9, 2, 202))
	tr.receive(ib, env(9, 3, 203))
	tr.receive(ib, env(9, 4, 204))

	want := []uint64{101, 201, 202, 203, 204}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n >= len(want) || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(want) {
		t.Fatalf("delivered %v, want %v (stale frames must not be redelivered)", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("delivered %v, want %v", seen, want)
		}
	}
}
