package transport

import "fmt"

// Durable-recovery support for the TCP transport: attaching a
// write-ahead delivery log to an inbox, capturing the inbox's
// resequencer state for a checkpoint, and priming a fresh inbox with
// that state after a crash so the restored endpoint resumes its
// streams instead of starting blank.
//
// Resuming matters for correctness of the replay path: the restored
// inbox advertises its pre-crash incarnation, so a surviving sender's
// ack comparison sees a reconnect, not a restart — it replays its
// unacknowledged frames under the same epoch and sequence numbers, and
// the primed pairState dedups the ones the WAL already replayed. A
// bumped incarnation would instead trigger the sender's blank-peer
// rebase (renumbering frames from seq 1), defeating exactly the dedup
// the deterministic tail replay depends on (DESIGN.md §11).

// StreamCursor is the resequencing frontier of one inbound stream: the
// sender epoch and the next expected sequence number. Cursors are
// captured at a checkpoint cut and re-derived from the WAL tail on
// restore.
type StreamCursor struct {
	Stream NodeID
	Host   bool
	Epoch  uint64
	Next   uint64
}

// inboxOf resolves the inbox of a locally registered owner: a host
// (ListenHost) or a legacy per-node endpoint (RegisterAddr).
func (t *TCP) inboxOf(owner NodeID) *inbox {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ib := t.hostBoxes[owner]; ib != nil {
		return ib
	}
	return t.inboxes[owner]
}

// SetDeliveryLog attaches (or, with nil, detaches) the write-ahead
// delivery log of owner's inbox. Attach before inbound traffic begins:
// frames delivered while no log is attached are not journaled, and the
// checkpoint cut assumes every stepped frame was logged.
func (t *TCP) SetDeliveryLog(owner NodeID, lg DeliveryLog) error {
	ib := t.inboxOf(owner)
	if ib == nil {
		return fmt.Errorf("tcp: set delivery log: no inbox for %d", owner)
	}
	ib.mu.Lock()
	ib.lg = lg
	ib.mu.Unlock()
	return nil
}

// Incarnation returns the incarnation owner's inbox stamps on its
// acknowledgements.
func (t *TCP) Incarnation(owner NodeID) (uint64, bool) {
	ib := t.inboxOf(owner)
	if ib == nil {
		return 0, false
	}
	return ib.inc, true
}

// InboxState captures the resequencer state of owner's inbox: its
// incarnation and the delivery frontier of every inbound stream. Call
// it at a quiescent cut (the engine's checkpoint does, with deliveries
// gated) — the snapshot is internally consistent but says nothing
// about frames still in flight.
func (t *TCP) InboxState(owner NodeID) (inc uint64, cursors []StreamCursor, ok bool) {
	ib := t.inboxOf(owner)
	if ib == nil {
		return 0, nil, false
	}
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for key, ps := range ib.pairs {
		cursors = append(cursors, StreamCursor{Stream: key.id, Host: key.host, Epoch: ps.epoch, Next: ps.next})
	}
	return ib.inc, cursors, true
}

// PrimeInbox restores a fresh inbox to a pre-crash identity: the
// incarnation it advertises in acks and the per-stream resequencing
// frontiers. Frames a surviving sender replays at or below a primed
// frontier are deduplicated exactly as they would have been by the
// crashed incarnation. Prime before peers (re)connect.
func (t *TCP) PrimeInbox(owner NodeID, inc uint64, cursors []StreamCursor) error {
	ib := t.inboxOf(owner)
	if ib == nil {
		return fmt.Errorf("tcp: prime inbox: no inbox for %d", owner)
	}
	ib.mu.Lock()
	defer ib.mu.Unlock()
	ib.inc = inc
	for _, c := range cursors {
		key := streamKey{id: c.Stream, host: c.Host}
		if ps := ib.pairs[key]; ps != nil && ps.epoch == c.Epoch && ps.next >= c.Next {
			continue // already at or past the primed frontier
		}
		ib.pairs[key] = &pairState{epoch: c.Epoch, next: c.Next, acked: c.Next - 1, held: make(map[uint64]heldFrame)}
	}
	return nil
}
