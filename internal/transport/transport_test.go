package transport_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/id"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
)

// probeSeq builds a Probe whose tag encodes a sequence number, so
// receivers can check ordering.
func probeSeq(n uint64) msg.Probe {
	return msg.Probe{Tag: id.Tag{Initiator: 0, N: n}}
}

// collector records received sequence numbers per sender.
type collector struct {
	mu   sync.Mutex
	seqs map[transport.NodeID][]uint64
	done chan struct{}
	want int
	got  int
}

func newCollector(want int) *collector {
	return &collector{seqs: make(map[transport.NodeID][]uint64), done: make(chan struct{}), want: want}
}

func (c *collector) HandleMessage(from transport.NodeID, m msg.Message) {
	p, ok := msg.Deref(m).(msg.Probe) // TCP delivers pooled pointer forms
	if !ok {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seqs[from] = append(c.seqs[from], p.Tag.N)
	c.got++
	if c.got == c.want {
		close(c.done)
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.got
}

func (c *collector) checkFIFO(t *testing.T) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	for from, seqs := range c.seqs {
		for i := 1; i < len(seqs); i++ {
			if seqs[i] <= seqs[i-1] {
				t.Fatalf("from %d: out of order at %d: %v", from, i, seqs)
			}
		}
	}
}

func TestSimNetFIFOUnderRandomLatency(t *testing.T) {
	sched := sim.New(3)
	net := transport.NewSimNet(sched, transport.UniformLatency{Min: 1, Max: 1000 * sim.Microsecond})
	checker := trace.NewFIFOChecker(func(s string) { t.Error("fifo violation:", s) })
	net.Observe(checker)
	const per = 200
	col := newCollector(3 * per)
	net.Register(9, col)
	for _, src := range []transport.NodeID{1, 2, 3} {
		net.Register(src, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	}
	for i := 1; i <= per; i++ {
		for _, src := range []transport.NodeID{1, 2, 3} {
			net.Send(src, 9, probeSeq(uint64(i)))
		}
	}
	sched.Run()
	col.checkFIFO(t)
	if u := checker.Undelivered(); u != 0 {
		t.Fatalf("%d messages lost", u)
	}
	if net.InFlight() != 0 {
		t.Fatalf("in-flight = %d after drain", net.InFlight())
	}
}

func TestLiveFIFOConcurrentSenders(t *testing.T) {
	net := transport.NewLive()
	defer net.Close()
	const per = 500
	col := newCollector(4 * per)
	net.Register(9, col)
	for s := transport.NodeID(1); s <= 4; s++ {
		net.Register(s, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	}
	var wg sync.WaitGroup
	for s := transport.NodeID(1); s <= 4; s++ {
		src := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				net.Send(src, 9, probeSeq(uint64(i)))
			}
		}()
	}
	wg.Wait()
	<-col.done
	col.checkFIFO(t)
}

func TestLiveCloseIsIdempotentAndDrains(t *testing.T) {
	net := transport.NewLive()
	got := 0
	done := make(chan struct{})
	net.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {
		got++
		if got == 100 {
			close(done)
		}
	}))
	net.Register(2, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	for i := 0; i < 100; i++ {
		net.Send(2, 1, msg.Request{})
	}
	<-done
	net.Close()
	net.Close() // idempotent
	if got != 100 {
		t.Fatalf("delivered %d, want 100", got)
	}
}

func TestTCPFIFOAndRoundTrip(t *testing.T) {
	net := transport.NewTCP()
	defer net.Close()
	const per = 300
	col := newCollector(2 * per)
	net.Register(9, col)
	net.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	net.Register(2, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	var wg sync.WaitGroup
	for _, src := range []transport.NodeID{1, 2} {
		src := src
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				net.Send(src, 9, probeSeq(uint64(i)))
			}
		}()
	}
	wg.Wait()
	<-col.done
	col.checkFIFO(t)
}

func TestTCPCarriesEveryMessageKind(t *testing.T) {
	net := transport.NewTCP()
	defer net.Close()
	kinds := []msg.Message{
		msg.Request{},
		msg.Reply{},
		msg.Probe{Tag: id.Tag{Initiator: 3, N: 9}},
		msg.WFGD{Edges: []id.Edge{{From: 1, To: 2}, {From: 2, To: 3}}},
		msg.CtrlAcquire{Txn: 4, Resource: 5, Mode: msg.LockWrite, Inc: 2},
		msg.CtrlGranted{Txn: 4, Resource: 5, Inc: 2},
		msg.CtrlRelease{Txn: 4, Resource: 5, Inc: 2},
		msg.CtrlProbe{Tag: id.CtrlTag{Initiator: 1, N: 7}, Edge: id.AgentEdge{
			From: id.Agent{Txn: 4, Site: 0}, To: id.Agent{Txn: 4, Site: 1}}},
		msg.CtrlAbort{Txn: 4},
		msg.BaselineReport{Site: 2, Edges: []id.AgentEdge{{From: id.Agent{Txn: 1, Site: 2}, To: id.Agent{Txn: 2, Site: 2}}}},
		msg.BaselineDecision{Deadlocked: []id.Txn{1, 2}},
	}
	type rcv struct {
		m msg.Message
	}
	got := make(chan rcv, len(kinds))
	net.Register(1, transport.HandlerFunc(func(_ transport.NodeID, m msg.Message) {
		// Deref before retaining: pooled pointer forms are recycled as
		// soon as this handler returns.
		got <- rcv{m: msg.Deref(m)}
	}))
	net.Register(0, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	for _, m := range kinds {
		net.Send(0, 1, m)
	}
	for i, want := range kinds {
		r := <-got
		if r.m.Kind() != want.Kind() {
			t.Fatalf("message %d: kind %v, want %v", i, r.m.Kind(), want.Kind())
		}
		if fmt.Sprintf("%+v", r.m) != fmt.Sprintf("%+v", want) {
			t.Fatalf("message %d: %+v != %+v", i, r.m, want)
		}
	}
}

func TestLatencyModels(t *testing.T) {
	sched := sim.New(11)
	rng := sched.Rand()
	fixed := transport.FixedLatency(42)
	for i := 0; i < 10; i++ {
		if d := fixed.Sample(rng); d != 42 {
			t.Fatalf("fixed latency = %d", d)
		}
	}
	uni := transport.UniformLatency{Min: 10, Max: 20}
	for i := 0; i < 1000; i++ {
		if d := uni.Sample(rng); d < 10 || d > 20 {
			t.Fatalf("uniform latency %d out of range", d)
		}
	}
	// Degenerate uniform.
	deg := transport.UniformLatency{Min: 7, Max: 7}
	if d := deg.Sample(rng); d != 7 {
		t.Fatalf("degenerate uniform = %d", d)
	}
	exp := transport.ExponentialLatency{Mean: 100}
	for i := 0; i < 1000; i++ {
		d := exp.Sample(rng)
		if d < 1 || d > 10000 {
			t.Fatalf("exponential latency %d out of [1, 100*mean]", d)
		}
	}
}

func TestSimNetPanicsOnUnregisteredDelivery(t *testing.T) {
	sched := sim.New(1)
	net := transport.NewSimNet(sched, nil)
	net.Register(1, transport.HandlerFunc(func(transport.NodeID, msg.Message) {}))
	net.Send(1, 2, msg.Request{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on delivery to unregistered node")
		}
	}()
	sched.Run()
}
