package transport

// Regression tests for the hot-path hardening sweep: the resequencer's
// held-frame cap, newEpoch's entropy-failure fallback, and the mailbox
// ring's resize hysteresis.

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/msg"
)

// TestResequencerHeldCap: a buggy or hostile sender jumping to
// Seq = 1<<40 must not pin unbounded memory in the receiver's
// resequencer — frames beyond MaxHeldPerStream are dropped and
// counted, and in-order traffic keeps flowing.
func TestResequencerHeldCap(t *testing.T) {
	const cap = 8
	tr := NewTCPWithOptions(TCPOptions{MaxHeldPerStream: cap})
	defer tr.Close()
	var mu sync.Mutex
	var got []delivery
	ib := &inbox{node: 2, inc: newEpoch(), pairs: make(map[streamKey]*pairState)}
	ib.box = newMailbox(nil, func(d delivery) {
		mu.Lock()
		got = append(got, d)
		mu.Unlock()
	}, mailboxConfig{})
	defer ib.box.close()

	const hostile = 100
	for i := 0; i < hostile; i++ {
		tr.receive(ib, msg.Envelope{
			From: 1, To: 2, Epoch: 7, Seq: 1<<40 + uint64(i), Msg: msg.Request{},
		})
	}
	ps := ib.pairs[streamKey{id: 1}]
	if ps == nil {
		t.Fatal("no pair state created")
	}
	if len(ps.held) > cap {
		t.Fatalf("held %d frames, want <= cap %d", len(ps.held), cap)
	}
	if dropped := tr.Stats().HeldFramesDropped; dropped != hostile-cap {
		t.Fatalf("HeldFramesDropped = %d, want %d", dropped, hostile-cap)
	}
	// A duplicate of an already-held frame is not a second drop.
	tr.receive(ib, msg.Envelope{From: 1, To: 2, Epoch: 7, Seq: 1 << 40, Msg: msg.Request{}})
	if dropped := tr.Stats().HeldFramesDropped; dropped != hostile-cap {
		t.Fatalf("HeldFramesDropped = %d after held-frame duplicate, want %d", dropped, hostile-cap)
	}
	// The stream itself is still healthy: the next in-order frame
	// delivers immediately.
	tr.receive(ib, msg.Envelope{From: 1, To: 2, Epoch: 7, Seq: 1, Msg: msg.Request{}})
	waitFor(t, "in-order frame to deliver", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})
}

// TestNewEpochEntropyFallback: when the entropy source fails (or
// returns all zeros), newEpoch must still produce nonzero, mutually
// distinct, strictly increasing epochs — a zero or repeated epoch
// would alias another stream's resequencing state.
func TestNewEpochEntropyFallback(t *testing.T) {
	orig := entropyRead
	defer func() { entropyRead = orig }()

	entropyRead = func(b []byte) (int, error) { return 0, errors.New("entropy exhausted") }
	var prev uint64
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		e := newEpoch()
		if e == 0 {
			t.Fatal("fallback produced epoch 0")
		}
		if seen[e] {
			t.Fatalf("fallback repeated epoch %d", e)
		}
		seen[e] = true
		if i > 0 && e <= prev {
			t.Fatalf("fallback not monotonic: %d after %d", e, prev)
		}
		prev = e
	}

	// A "successful" read of all zeros is the other degenerate case: the
	// zero epoch is the resequencer's uninitialized value and must never
	// be issued.
	entropyRead = func(b []byte) (int, error) {
		for i := range b {
			b[i] = 0
		}
		return len(b), nil
	}
	if e := newEpoch(); e == 0 {
		t.Fatal("all-zero entropy produced epoch 0")
	}
}

// TestMailboxResizeHysteresis: a workload oscillating around a ring
// power-of-two boundary must not pay a reallocation per cycle. Without
// the consecutive-pop hysteresis each cycle below shrinks on the drain
// and grows again on the refill (two copies per cycle, ~2000 total);
// with it the ring just stays put.
func TestMailboxResizeHysteresis(t *testing.T) {
	mb := &mailbox{} // bare ring: no dispatcher, single-threaded access
	for i := 0; i < 17; i++ {
		mb.pushLocked(delivery{seq: uint64(i)})
	}
	if c := len(mb.buf); c != 32 {
		t.Fatalf("capacity = %d after 17 pushes, want 32", c)
	}
	base := mb.resizes
	for cycle := 0; cycle < 1000; cycle++ {
		for i := 0; i < 9; i++ {
			mb.popLocked() // drain to n=8 (== cap/4 of 32)
		}
		for i := 0; i < 9; i++ {
			mb.pushLocked(delivery{}) // refill to n=17
		}
	}
	if thrash := mb.resizes - base; thrash > 2 {
		t.Fatalf("ring resized %d times across 1000 oscillation cycles, want <= 2", thrash)
	}

	// A sustained drain must still reclaim the memory: that is the whole
	// point of shrinking, and the hysteresis only defers it.
	for mb.n < 129 {
		mb.pushLocked(delivery{})
	}
	for mb.n > 0 {
		mb.popLocked()
	}
	if c := len(mb.buf); c > 64 {
		t.Fatalf("capacity = %d after sustained drain, want <= 64", c)
	}
}
