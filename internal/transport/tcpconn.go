package transport

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/msg"
)

// outLink is the sender side of one ordered (from,to) pair: a
// dedicated goroutine owning the pair's connection, encoder and queue.
// Per-link ownership is what keeps one slow or blocked peer (full
// kernel send buffer, unreachable host) from stalling any other link
// in the process — Send only appends to the queue under the link's own
// mutex and returns.
//
// Every frame successfully written is retained in sent, the replay
// buffer: a reconnect retransmits the buffer, the receiver drops what
// it already delivered (by sequence number). The buffer is bounded by
// the acknowledgement protocol: the receiver reports its highest
// contiguously delivered sequence number in CtlAck control frames
// flowing back on the inbound connection, and handleAck releases every
// frame at or below that mark — after an ack exchange the buffer holds
// only unacked frames. A receiver that *restarts* (protocol state
// gone) comes back under a fresh inbox incarnation; handleAck notices
// the change and rebases the link (rebaseLocked) so the restarted peer
// gets every unacknowledged frame under a fresh epoch instead of a
// pruned history it cannot resequence.
type outLink struct {
	t        *TCP
	from, to NodeID
	// srcHost stamps the frames of a multiplexed per-host-pair link
	// (0 on legacy per-node links); dstIsHost selects which address
	// directory connect consults for the target.
	srcHost   int32
	dstIsHost bool
	epoch     uint64

	mu   sync.Mutex
	cond *sync.Cond
	// queue holds frames accepted by Send and not yet written; sent
	// holds frames written on some connection and not yet acknowledged,
	// kept for replay.
	queue []msg.Envelope
	sent  []msg.Envelope
	seq   uint64
	conn  net.Conn
	enc   *msg.Encoder
	// gen counts rebases: the run loop captures it when it copies a
	// batch out for writing and skips its pop/append bookkeeping if a
	// rebase renumbered the queue mid-write.
	gen uint64
	// broken marks the current conn dead (peer closed, forced drop);
	// the run loop tears it down and re-dials.
	broken        bool
	everConnected bool
	closed        bool

	// Lease-based failure-detector state. pingDue asks the run loop to
	// write one CtlPing on the established connection; lastAck is the
	// wall-clock time of the last CtlAck from the peer; peerInc is the
	// peer's inbox incarnation as observed in acks (0 until the first
	// ack); peerDown latches the lease verdict so down/up events fire
	// once per transition.
	pingDue  bool
	lastAck  time.Time
	peerInc  uint64
	peerDown bool
}

// newOutLink creates the link; the caller starts run() (and, when the
// lease detector is armed, leaseLoop()) and owns the t.wg accounting
// for them.
func newOutLink(t *TCP, from, to NodeID, srcHost int32, dstIsHost bool) *outLink {
	l := &outLink{
		t: t, from: from, to: to,
		srcHost: srcHost, dstIsHost: dstIsHost,
		epoch: newEpoch(), lastAck: time.Now(),
	}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// entropyRead is the randomness source for newEpoch, injectable so the
// fallback path is testable without breaking the process's entropy.
var entropyRead = crand.Read

// epochFallback is the monotonic counter behind newEpoch's fallback,
// seeded lazily from the wall clock. A bare UnixNano is not enough:
// two links created in the same nanosecond (or after a clock step)
// would share an epoch, and the receiver's resequencer would splice
// their streams together. The atomic increment keeps every fallback
// epoch distinct for the life of the process.
var epochFallback atomic.Uint64

// newEpoch draws a random nonzero sender-incarnation id. On entropy
// failure it falls back to a strictly increasing nonzero counter —
// never zero, never repeating within the process — because a zero or
// stale epoch would alias an existing stream's resequencing state.
func newEpoch() uint64 {
	var b [8]byte
	if _, err := entropyRead(b[:]); err == nil {
		if e := binary.LittleEndian.Uint64(b[:]); e != 0 {
			return e
		}
	}
	epochFallback.CompareAndSwap(0, uint64(time.Now().UnixNano()))
	for {
		if e := epochFallback.Add(1); e != 0 {
			return e
		}
	}
}

// envBatch is a recyclable copy of a run of envelopes: the scratch the
// sender loop and the reconnect replay copy frames into so they can be
// written outside the link lock. Pooled because the sender loop makes
// one copy per flush — at high message rates that was the transport's
// dominant steady-state allocation.
type envBatch struct {
	envs []msg.Envelope
}

var envBatchPool = sync.Pool{New: func() any { return new(envBatch) }}

// copyBatch snapshots src into a pooled batch.
func copyBatch(src []msg.Envelope) *envBatch {
	b := envBatchPool.Get().(*envBatch)
	if cap(b.envs) < len(src) {
		b.envs = make([]msg.Envelope, len(src))
	}
	b.envs = b.envs[:len(src)]
	copy(b.envs, src)
	return b
}

// release zeroes the batch (so the pooled array does not pin message
// payloads) and returns it to the pool.
func (b *envBatch) release() {
	for i := range b.envs {
		b.envs[i] = msg.Envelope{}
	}
	b.envs = b.envs[:0]
	envBatchPool.Put(b)
}

// run is the link's sender loop: wait for work (or a dead connection
// with history to replay), ensure a connection, write the queue head.
// Writes happen outside the lock so Send never blocks behind a slow
// network; only this goroutine mutates conn, enc, the queue head and
// sent, so the unlocked window is safe.
//
// On the binary codec a batch goes out as one gathered write: each
// frame is appended to its own reusable segment and the segments are
// handed to net.Buffers.WriteTo, which on a *net.TCPConn issues a
// single writev(2) for the whole batch — one syscall per flush instead
// of one buffered copy per frame plus a flush write. The segments are
// owned by this goroutine and recycled across flushes, so the vector
// path allocates nothing in steady state. Gob links (and the replay in
// install, which is rare) keep the buffered encoder; a write error in
// either path is handled identically, because the replay/dedup
// protocol never trusts a failed flush to have written anything.
func (l *outLink) run() {
	defer l.t.wg.Done()
	var (
		segs [][]byte    // per-frame encode buffers, reused across flushes
		vec  net.Buffers // gather list rebuilt per flush from segs
	)
	for {
		l.mu.Lock()
		for !l.closed && len(l.queue) == 0 && !(l.broken && len(l.sent) > 0) && !l.pingDue {
			l.cond.Wait()
		}
		if l.closed {
			l.mu.Unlock()
			return
		}
		if l.broken && l.conn != nil {
			l.conn.Close()
			l.conn = nil
			l.enc = nil
		}
		l.broken = false
		if l.conn == nil {
			l.mu.Unlock()
			if !l.connect() {
				return // transport closed
			}
			continue
		}
		ping := l.pingDue
		l.pingDue = false
		if len(l.queue) == 0 && !ping {
			l.mu.Unlock()
			continue
		}
		// Coalesce up to MaxBatch queued envelopes into one buffered
		// encode + single flush. The pooled copy lets Send keep appending
		// while the batch is on the wire, without allocating a fresh
		// slice per flush. A due lease ping rides the same flush; it
		// carries no sequence number, so it costs the stream nothing.
		k := len(l.queue)
		if max := l.t.opts.MaxBatch; k > max {
			k = max
		}
		batch := copyBatch(l.queue[:k])
		gen := l.gen
		enc := l.enc
		conn := l.conn
		epoch := l.epoch
		l.mu.Unlock()

		var err error
		vectored := enc.Vectored()
		if vectored {
			frames := batch.envs
			n := len(frames)
			if ping {
				n++
			}
			for len(segs) < n {
				segs = append(segs, nil)
			}
			vec = vec[:0]
			for i, env := range frames {
				if segs[i], err = enc.AppendFrame(segs[i][:0], env); err != nil {
					break
				}
				vec = append(vec, segs[i])
			}
			if err == nil && ping {
				i := n - 1
				if segs[i], err = enc.AppendFrame(segs[i][:0], msg.Envelope{
					From: int32(l.from), To: int32(l.to), SrcHost: l.srcHost,
					Epoch: epoch, Ctl: msg.CtlPing,
				}); err == nil {
					vec = append(vec, segs[i])
				}
			}
			if err == nil && len(vec) > 0 {
				_, err = vec.WriteTo(conn)
			}
		} else {
			for _, env := range batch.envs {
				if err = enc.EncodeBuffered(env); err != nil {
					break
				}
			}
			if err == nil && ping {
				err = enc.EncodeBuffered(msg.Envelope{
					From: int32(l.from), To: int32(l.to), SrcHost: l.srcHost,
					Epoch: epoch, Ctl: msg.CtlPing,
				})
			}
			if err == nil {
				err = enc.Flush()
			}
		}

		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			batch.release()
			return
		}
		if err != nil {
			if l.conn == conn {
				l.conn.Close()
				l.conn = nil
				l.enc = nil
			}
			l.mu.Unlock()
			batch.release()
			l.t.stats.writeErrors.Add(1)
			l.t.event(ConnEvent{Kind: ConnWriteError, From: l.from, To: l.to, Err: err.Error()})
			l.t.report(fmt.Errorf("tcp: write %d->%d: %w", l.from, l.to, err))
			// The whole batch is unconfirmed (the buffer may have spilled
			// part of it): the reconnect replays sent and the run loop
			// then re-batches the still-queued frames; the receiver drops
			// whatever it already saw by sequence number. A swallowed
			// ping is simply lost — the lease loop re-arms it.
			continue
		}
		if l.gen == gen {
			// Pop the batch off the queue, zeroing the vacated tail so the
			// backing array does not pin flushed envelopes.
			rem := copy(l.queue, l.queue[k:])
			for i := rem; i < len(l.queue); i++ {
				l.queue[i] = msg.Envelope{}
			}
			l.queue = l.queue[:rem]
			l.sent = append(l.sent, batch.envs...)
		}
		// else: a rebase renumbered the queue while the batch was on the
		// wire; the written frames stay queued under their new epoch and
		// will be re-sent — the receiver discards the stale-epoch copies.
		l.mu.Unlock()
		batch.release()
		if k > 0 {
			l.t.stats.framesWritten.Add(int64(k))
		}
		if ping {
			l.t.stats.heartbeats.Add(1)
		}
		l.t.stats.flushes.Add(1)
		if vectored {
			l.t.stats.vectorFlushes.Add(1)
		}
	}
}

// connect dials the peer with exponential backoff until it succeeds,
// then replays the link's history on the new connection. It returns
// false only when the transport is closing. Failures beyond the
// configured DialTimeout are surfaced once per cycle through OnError;
// retries continue regardless, because abandoning queued frames would
// silently break the no-loss axiom the algorithm assumes.
func (l *outLink) connect() bool {
	o := l.t.opts
	backoff := o.RetryBase
	attemptTimeout := o.RetryMax
	if attemptTimeout < 100*time.Millisecond {
		attemptTimeout = 100 * time.Millisecond
	}
	start := time.Now()
	attempt := 0
	reported := false
	for {
		if l.t.isClosed() {
			return false
		}
		attempt++
		addr, known := l.t.peerAddr(l.to, l.dstIsHost)
		var conn net.Conn
		var err error
		if !known {
			err = fmt.Errorf("no address for node %d", l.to)
		} else {
			l.t.stats.dials.Add(1)
			conn, err = net.DialTimeout("tcp", addr, attemptTimeout)
		}
		if err == nil {
			if l.install(conn, addr, attempt) {
				return true
			}
			// Replay failed; fall through to retry after backoff.
		} else {
			l.t.stats.dialRetries.Add(1)
			l.t.event(ConnEvent{Kind: ConnDialRetry, From: l.from, To: l.to,
				Addr: addr, Attempt: attempt, Err: err.Error()})
			if !reported && time.Since(start) >= o.DialTimeout {
				reported = true
				l.t.stats.dialDeadlines.Add(1)
				l.t.event(ConnEvent{Kind: ConnDialDeadline, From: l.from, To: l.to,
					Addr: addr, Attempt: attempt, Err: err.Error()})
				l.t.report(fmt.Errorf("tcp: dial node %d (%s): still failing after %v (attempt %d): %w",
					l.to, addr, time.Since(start).Round(time.Millisecond), attempt, err))
			}
		}
		select {
		case <-time.After(jitteredDelay(backoff, rand.Float64)):
		case <-l.t.done:
			return false
		}
		if backoff *= 2; backoff > o.RetryMax {
			backoff = o.RetryMax
		}
	}
}

// jitteredDelay spreads one backoff sleep uniformly over [d/2, d].
// Without jitter, every peer of a restarted node retries on the same
// doubling schedule and the reconnect dials arrive as synchronized
// bursts (a thundering herd against a node that is busy rebuilding);
// drawing from the half-open interval keeps the cap — a delay never
// exceeds the nominal backoff — while desynchronizing the herd. rnd is
// injected (returning [0,1)) so tests can pin the bounds.
func jitteredDelay(d time.Duration, rnd func() float64) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rnd()*float64(d-half))
}

// install adopts a freshly dialed connection, starts its peer watcher
// and replays the link's history. It returns false if the replay
// failed (the connection is torn down and the caller retries).
func (l *outLink) install(conn net.Conn, addr string, attempt int) bool {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		conn.Close()
		return false
	}
	replay := copyBatch(l.sent)
	defer replay.release()
	enc := msg.NewEncoderFormat(conn, l.t.opts.Codec)
	l.conn = conn
	l.enc = enc
	l.broken = false
	first := !l.everConnected
	l.everConnected = true
	l.mu.Unlock()

	l.t.stats.connects.Add(1)
	kind := ConnConnected
	if !first {
		l.t.stats.reconnects.Add(1)
		kind = ConnReconnected
	}
	l.t.event(ConnEvent{Kind: kind, From: l.from, To: l.to, Addr: addr, Attempt: attempt})

	l.t.wg.Add(1)
	go l.watch(conn)

	// The replay is one batch: buffered encodes, single flush.
	writeReplay := func() error {
		for _, env := range replay.envs {
			if err := enc.EncodeBuffered(env); err != nil {
				return err
			}
		}
		return enc.Flush()
	}
	if err := writeReplay(); err != nil {
		l.mu.Lock()
		if l.conn == conn {
			l.conn = nil
			l.enc = nil
		}
		l.mu.Unlock()
		conn.Close()
		if !l.t.isClosed() {
			l.t.stats.writeErrors.Add(1)
			l.t.event(ConnEvent{Kind: ConnWriteError, From: l.from, To: l.to,
				Addr: addr, Err: err.Error()})
		}
		return false
	}
	if len(replay.envs) > 0 {
		l.t.stats.framesWritten.Add(int64(len(replay.envs)))
		l.t.stats.flushes.Add(1)
	}
	l.t.stats.replayed.Add(int64(len(replay.envs)))
	return true
}

// watch reads the connection's return stream until the peer closes it
// (or it fails), then marks the link broken and wakes the run loop.
// The only traffic a peer sends back on an outbound connection is
// CtlAck control frames — cumulative delivery acknowledgements that
// prune the replay buffer and feed the lease detector; anything else
// is ignored. Any read error means the connection is gone. Without the
// watcher, a peer crash would be noticed only at the next write — and
// a kernel buffer can swallow one write to a freshly dead peer without
// an error, losing the frame; marking the link broken forces a
// reconnect that replays it.
func (l *outLink) watch(conn net.Conn) {
	defer l.t.wg.Done()
	dec := msg.NewDecoder(conn)
	for {
		env, err := dec.Decode()
		if err != nil {
			break
		}
		if env.Ctl == msg.CtlAck {
			l.handleAck(env)
		}
	}
	l.mu.Lock()
	if l.conn == conn && !l.closed {
		l.broken = true
		l.cond.Broadcast()
	}
	l.mu.Unlock()
	if !l.t.isClosed() {
		l.t.event(ConnEvent{Kind: ConnPeerClosed, From: l.from, To: l.to,
			Addr: conn.RemoteAddr().String()})
	}
}

// handleAck processes one cumulative acknowledgement from the peer:
// refresh the lease, prune the replay buffer up to the acked sequence
// number, and — when the ack reveals a new peer incarnation (the peer
// restarted and lost its resequencing state) — rebase the link so the
// fresh incarnation receives every unacknowledged frame from sequence
// 1 of a fresh epoch.
func (l *outLink) handleAck(env msg.Envelope) {
	l.t.stats.acksReceived.Add(1)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.lastAck = time.Now()
	if env.Epoch == l.epoch && env.Ack > 0 {
		// sent is ordered by ascending Seq; release the acked prefix,
		// zeroing vacated slots so the array does not pin envelopes.
		cut := 0
		for cut < len(l.sent) && l.sent[cut].Seq <= env.Ack {
			cut++
		}
		if cut > 0 {
			rem := copy(l.sent, l.sent[cut:])
			for i := rem; i < len(l.sent); i++ {
				l.sent[i] = msg.Envelope{}
			}
			l.sent = l.sent[:rem]
			l.t.stats.framesPruned.Add(int64(cut))
		}
	}
	wasDown := l.peerDown
	l.peerDown = false
	restarted := l.peerInc != 0 && env.Inc != 0 && env.Inc != l.peerInc
	if env.Inc != 0 {
		l.peerInc = env.Inc
	}
	if restarted {
		l.rebaseLocked()
	}
	l.mu.Unlock()
	if wasDown || restarted {
		l.t.stats.peerUps.Add(1)
		l.t.event(ConnEvent{Kind: ConnPeerUp, From: l.from, To: l.to, Inc: env.Inc})
	}
}

// rebaseLocked (l.mu held) restarts the link's stream for a fresh peer
// incarnation: every unacknowledged frame — replay buffer first, then
// the unsent queue — is renumbered from sequence 1 under a fresh
// epoch and requeued. The restarted peer's resequencer sees a new
// epoch, expects sequence 1, and receives exactly the frames its
// previous incarnation never acknowledged; without the rebase a pruned
// replay buffer would start at some k > 1 and the fresh incarnation
// would hold the stream forever waiting for the gap.
func (l *outLink) rebaseLocked() {
	merged := append(l.sent, l.queue...)
	l.epoch = newEpoch()
	for i := range merged {
		merged[i].Seq = uint64(i + 1)
		merged[i].Epoch = l.epoch
	}
	l.sent = nil
	l.queue = merged
	l.seq = uint64(len(merged))
	l.gen++
	l.cond.Broadcast()
}

// leaseLoop is the link's failure detector: once per LeaseInterval it
// arms a ping for the run loop and checks how stale the peer's last
// acknowledgement is. LeaseMisses silent intervals declare the peer
// down (ConnPeerDown, once per outage); the next acknowledgement —
// handled in handleAck — declares it up again. Started only when
// TCPOptions.LeaseInterval > 0.
func (l *outLink) leaseLoop() {
	defer l.t.wg.Done()
	interval := l.t.opts.LeaseInterval
	expiry := interval * time.Duration(l.t.opts.LeaseMisses)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-l.t.done:
			return
		case <-tick.C:
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		l.pingDue = true
		l.cond.Broadcast()
		expired := !l.peerDown && time.Since(l.lastAck) > expiry
		if expired {
			l.peerDown = true
		}
		l.mu.Unlock()
		if expired {
			l.t.stats.peerDowns.Add(1)
			l.t.event(ConnEvent{Kind: ConnPeerDown, From: l.from, To: l.to})
		}
	}
}

// breakConn forcibly drops the link's current connection (fault
// injection; see TCP.DropConnections).
func (l *outLink) breakConn() {
	l.mu.Lock()
	if l.conn != nil {
		l.conn.Close()
	}
	l.broken = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// close stops the sender loop and closes the connection. Frames still
// queued are dropped — the transport is shutting down.
func (l *outLink) close() {
	l.mu.Lock()
	l.closed = true
	if l.conn != nil {
		l.conn.Close()
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}
