package transport

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/msg"
)

// outLink is the sender side of one ordered (from,to) pair: a
// dedicated goroutine owning the pair's connection, encoder and queue.
// Per-link ownership is what keeps one slow or blocked peer (full
// kernel send buffer, unreachable host) from stalling any other link
// in the process — Send only appends to the queue under the link's own
// mutex and returns.
//
// Every frame successfully written is retained in sent, the replay
// buffer: a reconnect retransmits the whole buffer, the receiver drops
// what it already delivered (by sequence number) and a restarted
// receiver — whose protocol state died with it — gets the link's full
// history back. The buffer grows with the link's lifetime traffic;
// bounding it requires an acknowledgement protocol and is documented
// future work.
type outLink struct {
	t        *TCP
	from, to NodeID
	epoch    uint64

	mu   sync.Mutex
	cond *sync.Cond
	// queue holds frames accepted by Send and not yet written; sent
	// holds frames written on some connection, kept for replay.
	queue []msg.Envelope
	sent  []msg.Envelope
	seq   uint64
	conn  net.Conn
	enc   *msg.Encoder
	// broken marks the current conn dead (peer closed, forced drop);
	// the run loop tears it down and re-dials.
	broken        bool
	everConnected bool
	closed        bool
}

// newOutLink creates the link; the caller starts run() and owns the
// t.wg accounting for it.
func newOutLink(t *TCP, from, to NodeID) *outLink {
	l := &outLink{t: t, from: from, to: to, epoch: newEpoch()}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// newEpoch draws a random nonzero sender-incarnation id.
func newEpoch() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if e := binary.LittleEndian.Uint64(b[:]); e != 0 {
			return e
		}
	}
	return uint64(time.Now().UnixNano()) | 1
}

// run is the link's sender loop: wait for work (or a dead connection
// with history to replay), ensure a connection, write the queue head.
// Writes happen outside the lock so Send never blocks behind a slow
// network; only this goroutine mutates conn, enc, the queue head and
// sent, so the unlocked window is safe.
func (l *outLink) run() {
	defer l.t.wg.Done()
	for {
		l.mu.Lock()
		for !l.closed && len(l.queue) == 0 && !(l.broken && len(l.sent) > 0) {
			l.cond.Wait()
		}
		if l.closed {
			l.mu.Unlock()
			return
		}
		if l.broken && l.conn != nil {
			l.conn.Close()
			l.conn = nil
			l.enc = nil
		}
		l.broken = false
		if l.conn == nil {
			l.mu.Unlock()
			if !l.connect() {
				return // transport closed
			}
			continue
		}
		if len(l.queue) == 0 {
			l.mu.Unlock()
			continue
		}
		// Coalesce up to MaxBatch queued envelopes into one buffered
		// encode + single flush. The copy lets Send keep appending while
		// the batch is on the wire.
		k := len(l.queue)
		if max := l.t.opts.MaxBatch; k > max {
			k = max
		}
		batch := append([]msg.Envelope(nil), l.queue[:k]...)
		enc := l.enc
		conn := l.conn
		l.mu.Unlock()

		var err error
		for _, env := range batch {
			if err = enc.EncodeBuffered(env); err != nil {
				break
			}
		}
		if err == nil {
			err = enc.Flush()
		}

		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		if err != nil {
			if l.conn == conn {
				l.conn.Close()
				l.conn = nil
				l.enc = nil
			}
			l.mu.Unlock()
			l.t.stats.writeErrors.Add(1)
			l.t.event(ConnEvent{Kind: ConnWriteError, From: l.from, To: l.to, Err: err.Error()})
			l.t.report(fmt.Errorf("tcp: write %d->%d: %w", l.from, l.to, err))
			// The whole batch is unconfirmed (the buffer may have spilled
			// part of it): the reconnect replays sent and the run loop
			// then re-batches the still-queued frames; the receiver drops
			// whatever it already saw by sequence number.
			continue
		}
		// Pop the batch off the queue, zeroing the vacated tail so the
		// backing array does not pin flushed envelopes.
		rem := copy(l.queue, l.queue[k:])
		for i := rem; i < len(l.queue); i++ {
			l.queue[i] = msg.Envelope{}
		}
		l.queue = l.queue[:rem]
		l.sent = append(l.sent, batch...)
		l.mu.Unlock()
		l.t.stats.framesWritten.Add(int64(k))
		l.t.stats.flushes.Add(1)
	}
}

// connect dials the peer with exponential backoff until it succeeds,
// then replays the link's history on the new connection. It returns
// false only when the transport is closing. Failures beyond the
// configured DialTimeout are surfaced once per cycle through OnError;
// retries continue regardless, because abandoning queued frames would
// silently break the no-loss axiom the algorithm assumes.
func (l *outLink) connect() bool {
	o := l.t.opts
	backoff := o.RetryBase
	attemptTimeout := o.RetryMax
	if attemptTimeout < 100*time.Millisecond {
		attemptTimeout = 100 * time.Millisecond
	}
	start := time.Now()
	attempt := 0
	reported := false
	for {
		if l.t.isClosed() {
			return false
		}
		attempt++
		addr, known := l.t.peerAddr(l.to)
		var conn net.Conn
		var err error
		if !known {
			err = fmt.Errorf("no address for node %d", l.to)
		} else {
			l.t.stats.dials.Add(1)
			conn, err = net.DialTimeout("tcp", addr, attemptTimeout)
		}
		if err == nil {
			if l.install(conn, addr, attempt) {
				return true
			}
			// Replay failed; fall through to retry after backoff.
		} else {
			l.t.stats.dialRetries.Add(1)
			l.t.event(ConnEvent{Kind: ConnDialRetry, From: l.from, To: l.to,
				Addr: addr, Attempt: attempt, Err: err.Error()})
			if !reported && time.Since(start) >= o.DialTimeout {
				reported = true
				l.t.stats.dialDeadlines.Add(1)
				l.t.event(ConnEvent{Kind: ConnDialDeadline, From: l.from, To: l.to,
					Addr: addr, Attempt: attempt, Err: err.Error()})
				l.t.report(fmt.Errorf("tcp: dial node %d (%s): still failing after %v (attempt %d): %w",
					l.to, addr, time.Since(start).Round(time.Millisecond), attempt, err))
			}
		}
		select {
		case <-time.After(backoff):
		case <-l.t.done:
			return false
		}
		if backoff *= 2; backoff > o.RetryMax {
			backoff = o.RetryMax
		}
	}
}

// install adopts a freshly dialed connection, starts its peer watcher
// and replays the link's history. It returns false if the replay
// failed (the connection is torn down and the caller retries).
func (l *outLink) install(conn net.Conn, addr string, attempt int) bool {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		conn.Close()
		return false
	}
	replay := append([]msg.Envelope(nil), l.sent...)
	enc := msg.NewEncoder(conn)
	l.conn = conn
	l.enc = enc
	l.broken = false
	first := !l.everConnected
	l.everConnected = true
	l.mu.Unlock()

	l.t.stats.connects.Add(1)
	kind := ConnConnected
	if !first {
		l.t.stats.reconnects.Add(1)
		kind = ConnReconnected
	}
	l.t.event(ConnEvent{Kind: kind, From: l.from, To: l.to, Addr: addr, Attempt: attempt})

	l.t.wg.Add(1)
	go l.watch(conn)

	// The replay is one batch: buffered encodes, single flush.
	writeReplay := func() error {
		for _, env := range replay {
			if err := enc.EncodeBuffered(env); err != nil {
				return err
			}
		}
		return enc.Flush()
	}
	if err := writeReplay(); err != nil {
		l.mu.Lock()
		if l.conn == conn {
			l.conn = nil
			l.enc = nil
		}
		l.mu.Unlock()
		conn.Close()
		if !l.t.isClosed() {
			l.t.stats.writeErrors.Add(1)
			l.t.event(ConnEvent{Kind: ConnWriteError, From: l.from, To: l.to,
				Addr: addr, Err: err.Error()})
		}
		return false
	}
	if len(replay) > 0 {
		l.t.stats.framesWritten.Add(int64(len(replay)))
		l.t.stats.flushes.Add(1)
	}
	l.t.stats.replayed.Add(int64(len(replay)))
	return true
}

// watch blocks on the connection until the peer closes it (or it
// fails), then marks the link broken and wakes the run loop. Peers
// never send data on an inbound connection, so any read return means
// the connection is gone. Without the watcher, a peer crash would be
// noticed only at the next write — and a kernel buffer can swallow one
// write to a freshly dead peer without an error, losing the frame;
// marking the link broken forces a reconnect that replays it.
func (l *outLink) watch(conn net.Conn) {
	defer l.t.wg.Done()
	_, _ = io.Copy(io.Discard, conn)
	l.mu.Lock()
	if l.conn == conn && !l.closed {
		l.broken = true
		l.cond.Broadcast()
	}
	l.mu.Unlock()
	if !l.t.isClosed() {
		l.t.event(ConnEvent{Kind: ConnPeerClosed, From: l.from, To: l.to,
			Addr: conn.RemoteAddr().String()})
	}
}

// breakConn forcibly drops the link's current connection (fault
// injection; see TCP.DropConnections).
func (l *outLink) breakConn() {
	l.mu.Lock()
	if l.conn != nil {
		l.conn.Close()
	}
	l.broken = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// close stops the sender loop and closes the connection. Frames still
// queued are dropped — the transport is shutting down.
func (l *outLink) close() {
	l.mu.Lock()
	l.closed = true
	if l.conn != nil {
		l.conn.Close()
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}
