// Package transport provides message delivery between nodes with the
// exact guarantees the paper's proofs rely on: every message is received
// correctly, within finite time, and in the order sent between any
// ordered pair of nodes (§2.4 "We assume that messages ... are received
// in finite time in the order sent", and axiom P4). Three
// implementations share one interface: a deterministic simulated network
// driven by a discrete-event scheduler, a live in-process network built
// from goroutines and mailboxes, and a TCP network over real sockets.
package transport

import (
	"math/rand"

	"repro/internal/msg"
	"repro/internal/sim"
)

// NodeID names an endpoint on a transport. The basic model maps one
// process per node; the DDB model maps one controller per node.
type NodeID int32

// Handler receives messages delivered to a node. A transport invokes a
// node's handler sequentially — one message at a time — which realizes
// the paper's atomic-step requirement ("Each step ... once started must
// be completed before the process can send or receive other messages").
type Handler interface {
	HandleMessage(from NodeID, m msg.Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from NodeID, m msg.Message)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(from NodeID, m msg.Message) { f(from, m) }

// MessageRetainer marks a Handler whose HandleMessage retains the
// delivered message past the call — typically by enqueuing it for an
// asynchronous consumer (the engine's shard ingress does this). The TCP
// transport decodes hot-path messages into pooled structs and recycles
// each one as soon as the handler returns; a retaining handler must
// implement this marker to take ownership instead, and then becomes
// responsible for calling msg.Recycle itself once the message has been
// consumed. Handlers that finish with the message inside HandleMessage
// (every synchronous protocol step) need nothing.
type MessageRetainer interface {
	// RetainsMessages is a marker; it is never called.
	RetainsMessages()
}

// StreamSink accepts the in-order deliveries of one inbound frame
// stream on a lock-free path, bypassing the dispatch mailbox. The
// transport calls DeliverStream under its per-stream resequencing lock,
// so calls for one sink are serialized and arrive in exact stream
// order; the sink must preserve that order per destination.
// DeliverStream takes ownership of m (the sink's consumer recycles
// pooled frames); a false return means the sink does not own the
// destination and the caller must deliver through its regular path —
// the verdict must be stable per destination, or per-pair FIFO breaks.
type StreamSink interface {
	DeliverStream(from, to NodeID, m msg.Message) bool
}

// SinkProvider is implemented by handlers (the engine Host's inbound
// shim) that can consume deliveries through a StreamSink. The TCP
// transport binds one sink per inbound stream, lazily at the stream's
// first sequenced frame, and keeps it for the stream's lifetime —
// across reconnects and sender epoch changes, whose frames must not
// race each other through different paths. Binding is skipped while
// transport observers are attached: observer callbacks fire on the
// dispatch path, and a sink would route around them.
type SinkProvider interface {
	BindStream() StreamSink
}

// SequencedHandler is an optional Handler extension for dispatch-path
// deliveries that carry stream sequencing. When a delivered frame was
// resequenced (seq != 0) and the handler implements this interface, the
// transport calls HandleSequenced instead of HandleMessage, so the
// handler can account the delivery against the write-ahead log's
// record stream (the engine Host's checkpoint cut relies on knowing
// every logged frame has been stepped). The MessageRetainer contract
// applies to both entry points alike.
type SequencedHandler interface {
	Handler
	HandleSequenced(from NodeID, m msg.Message, epoch, seq uint64)
}

// DeliveryLog is the durability hook of an inbox: when attached (see
// TCP.SetDeliveryLog), LogDelivery is called for every sequenced frame
// at the moment the resequencer commits it for delivery — under the
// per-stream lock, before the frame reaches a sink or mailbox and,
// crucially, before the acknowledgement covering it is written back to
// the sender. A LogDelivery that fsyncs therefore gives log-before-ack
// durability: every acknowledged frame is on disk, and every frame not
// on disk is still in the sender's replay buffer. LogDelivery may
// block (the checkpoint cut does, briefly); it must not call back into
// the transport. The message is only borrowed for the duration of the
// call.
type DeliveryLog interface {
	LogDelivery(stream NodeID, streamIsHost bool, epoch, seq uint64, from, to NodeID, m msg.Message)
}

// PlacementResolver maps process ids to the hosts that own them and
// hosts to dialable addresses. The TCP transport consults it (see
// TCP.SetResolver) whenever its static tables — AssignNode/SetHostPeer
// wiring — have no answer, which is how the cluster layer's replicated
// routing directory replaces hand-wired pair-by-pair topology: host
// links are dialed on demand from whatever the member map currently
// says. Implementations must be safe for concurrent use; the transport
// calls them under its own locks, so they must not call back into the
// transport.
type PlacementResolver interface {
	// HostOf returns the host that owns node, or ok=false when the
	// node's placement is unknown (the transport then falls back to
	// per-node addressing).
	HostOf(node NodeID) (host NodeID, ok bool)
	// AddrOf returns the dial address of a host listener, or ok=false
	// when the host is not (or no longer) a member.
	AddrOf(host NodeID) (addr string, ok bool)
}

// StaticPlacement is a fixed PlacementResolver for topologies known at
// construction time. It is the directory-API replacement for per-pair
// AssignNode/SetHostPeer wiring: build the two maps once, install with
// SetResolver, and the transport resolves every node and dials every
// host link from them on demand. The maps must not be mutated after the
// resolver is installed.
type StaticPlacement struct {
	// Hosts maps node id → owning host id.
	Hosts map[NodeID]NodeID
	// Addrs maps host id → listener dial address.
	Addrs map[NodeID]string
}

// HostOf implements PlacementResolver.
func (s StaticPlacement) HostOf(node NodeID) (NodeID, bool) {
	h, ok := s.Hosts[node]
	return h, ok
}

// AddrOf implements PlacementResolver.
func (s StaticPlacement) AddrOf(host NodeID) (string, bool) {
	a, ok := s.Addrs[host]
	return a, ok
}

// HostSender is implemented by transports that can pin an outbound
// message onto a specific source host's frame stream regardless of the
// nominal sender. Live migration needs it: when host A forwards frames
// for a process that moved to host B, the original sender may live on a
// third host X — forwarding with X as the stream source would let A's
// copy collide with X's own (future) stream to B, so A pins forwarded
// frames to its own A→B stream instead. From/To still name the node
// endpoints; only the link and the envelope's SrcHost change.
type HostSender interface {
	SendFromHost(srcHost, from, to NodeID, m msg.Message)
}

// Transport routes messages between registered nodes.
type Transport interface {
	// Register attaches the handler for a node. It must be called
	// before any message is sent to that node.
	Register(id NodeID, h Handler)
	// Send routes m from one node to another. Delivery is reliable,
	// FIFO per ordered (from,to) pair, and asynchronous: Send never
	// invokes the destination handler synchronously.
	Send(from, to NodeID, m msg.Message)
}

// Observer is notified of message lifecycle events. Metrics counters and
// the FIFO-checking tracer attach through this interface.
type Observer interface {
	// OnSend fires when a message is handed to the transport.
	OnSend(from, to NodeID, m msg.Message)
	// OnDeliver fires immediately before the destination handler runs.
	OnDeliver(from, to NodeID, m msg.Message)
}

// Latency models per-message network delay for the simulated transport.
type Latency interface {
	// Sample draws one message delay.
	Sample(rng *rand.Rand) sim.Duration
}

// FixedLatency delays every message by the same amount.
type FixedLatency sim.Duration

// Sample implements Latency.
func (l FixedLatency) Sample(*rand.Rand) sim.Duration { return sim.Duration(l) }

// UniformLatency draws delays uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max sim.Duration
}

// Sample implements Latency.
func (l UniformLatency) Sample(rng *rand.Rand) sim.Duration {
	if l.Max <= l.Min {
		return l.Min
	}
	return l.Min + sim.Duration(rng.Int63n(int64(l.Max-l.Min)+1))
}

// ExponentialLatency draws delays from an exponential distribution with
// the given mean, capped at 100x the mean to keep tails finite (the
// paper only requires "arbitrary, finite time").
type ExponentialLatency struct {
	Mean sim.Duration
}

// Sample implements Latency.
func (l ExponentialLatency) Sample(rng *rand.Rand) sim.Duration {
	d := sim.Duration(rng.ExpFloat64() * float64(l.Mean))
	if cap := 100 * l.Mean; d > cap {
		d = cap
	}
	if d < 1 {
		d = 1
	}
	return d
}

// Compile-time interface checks.
var (
	_ Latency = FixedLatency(0)
	_ Latency = UniformLatency{}
	_ Latency = ExponentialLatency{}
)
