package msg

// Tests for the buffered (batched) encode path.

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/id"
)

// countingWriter counts Write calls, standing in for syscalls on a
// socket.
type countingWriter struct {
	buf    bytes.Buffer
	writes int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

func TestEncodeBufferedBatchRoundTrip(t *testing.T) {
	const n = 50
	w := &countingWriter{}
	enc := NewEncoder(w)
	for i := 0; i < n; i++ {
		env := Envelope{
			From: 1, To: 2, Seq: uint64(i + 1), Epoch: 7,
			Msg: Probe{Tag: id.Tag{Initiator: 1, N: uint64(i + 1)}},
		}
		if err := enc.EncodeBuffered(env); err != nil {
			t.Fatalf("EncodeBuffered(%d): %v", i, err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	// The whole batch must reach the stream in far fewer writes than
	// frames (the per-frame Encode path does one flush per frame).
	if w.writes >= n {
		t.Fatalf("batch of %d frames took %d writes, want coalescing", n, w.writes)
	}

	dec := NewDecoder(&w.buf)
	for i := 0; i < n; i++ {
		env, err := dec.Decode()
		if err != nil {
			t.Fatalf("Decode(%d): %v", i, err)
		}
		if env.Seq != uint64(i+1) {
			t.Fatalf("frame %d has Seq %d, want %d", i, env.Seq, i+1)
		}
		p, ok := env.Msg.(Probe)
		if !ok || p.Tag.N != uint64(i+1) {
			t.Fatalf("frame %d decoded as %#v", i, env.Msg)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("after batch: err = %v, want io.EOF", err)
	}
}

func TestEncodeBufferedRejectsNilMessage(t *testing.T) {
	for _, f := range []WireFormat{WireBinary, WireGob} {
		enc := NewEncoderFormat(&bytes.Buffer{}, f)
		if err := enc.EncodeBuffered(Envelope{From: 1, To: 2}); !errors.Is(err, ErrNilMessage) {
			t.Fatalf("%v: untyped nil: err = %v, want ErrNilMessage", f, err)
		}
		// A typed nil compares unequal to nil, so an == nil guard would
		// wave it through and fail confusingly downstream; the tag
		// dispatch must reject it with the same sentinel.
		if err := enc.EncodeBuffered(Envelope{From: 1, To: 2, Msg: (*Probe)(nil)}); !errors.Is(err, ErrNilMessage) {
			t.Fatalf("%v: typed nil: err = %v, want ErrNilMessage", f, err)
		}
		// Nothing may have reached the stream buffer from the rejects
		// (the binary stream's one version byte is allowed).
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
	}
}
