package msg

// Tests for the binary wire codec: per-type round-trips, differential
// equivalence with the legacy gob path, the golden header layout, the
// zero-allocation guarantees of the encode and reject paths, and the
// format-sniffing interop rules.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/id"
)

// allWireMessages returns one representative value per registered wire
// type, with every field nonzero so a dropped field cannot hide.
func allWireMessages() []Message {
	return []Message{
		Request{},
		Request{Rejoin: true},
		Reply{},
		Probe{Tag: id.Tag{Initiator: 7, N: 42}},
		WFGD{Edges: []id.Edge{{From: 1, To: 2}, {From: 3, To: 4}, {From: -5, To: 6}}},
		CtrlAcquire{Txn: 9, Resource: 11, Mode: LockWrite, Inc: 3},
		CtrlGranted{Txn: 9, Resource: 11, Inc: 3},
		CtrlRelease{Txn: 9, Resource: 11, Inc: 3},
		CtrlProbe{
			Tag:  id.CtrlTag{Initiator: 2, N: 17},
			Edge: id.AgentEdge{From: id.Agent{Txn: 1, Site: 2}, To: id.Agent{Txn: 1, Site: 3}},
		},
		CtrlAbort{Txn: 13},
		BaselineReport{Site: 3, Edges: []id.AgentEdge{
			{From: id.Agent{Txn: 1, Site: 1}, To: id.Agent{Txn: 2, Site: 1}},
		}},
		BaselineDecision{Deadlocked: []id.Txn{4, 5, 6}},
		CommWork{},
		CommQuery{Init: 3, Seq: 99},
		CommReply{Init: 3, Seq: 99},
		Cluster{Payload: []byte{0x01, 0xde, 0xad, 0xbe, 0xef}},
	}
}

// sameMessage compares decoded messages, treating a nil and an empty
// slice as equal (gob flattens empty slices to nil; the binary codec
// preserves a zero count — both mean "no elements").
func sameMessage(a, b Message) bool {
	norm := func(m Message) Message {
		switch v := m.(type) {
		case WFGD:
			if len(v.Edges) == 0 {
				return WFGD{}
			}
		case BaselineReport:
			if len(v.Edges) == 0 {
				return BaselineReport{Site: v.Site}
			}
		case BaselineDecision:
			if len(v.Deadlocked) == 0 {
				return BaselineDecision{}
			}
		case Cluster:
			if len(v.Payload) == 0 {
				return Cluster{}
			}
		}
		return m
	}
	return reflect.DeepEqual(norm(a), norm(b))
}

// TestBinaryRoundTripAllTypes round-trips every wire type with full
// envelope metadata through the binary codec.
func TestBinaryRoundTripAllTypes(t *testing.T) {
	for i, m := range allWireMessages() {
		var buf bytes.Buffer
		enc := NewEncoderFormat(&buf, WireBinary)
		in := Envelope{
			From: int32(i + 1), To: -int32(i + 2), SrcHost: int32(i),
			Seq: uint64(i + 10), Epoch: uint64(i)<<32 | 0xdead, Ack: uint64(i), Inc: uint64(i + 3),
			Msg: m,
		}
		if err := enc.Encode(in); err != nil {
			t.Fatalf("%T: encode: %v", m, err)
		}
		dec := NewDecoder(&buf)
		out, err := dec.Decode()
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if dec.Format() != WireBinary {
			t.Fatalf("%T: sniffed format %v, want binary", m, dec.Format())
		}
		if out.From != in.From || out.To != in.To || out.SrcHost != in.SrcHost ||
			out.Seq != in.Seq || out.Epoch != in.Epoch || out.Ack != in.Ack || out.Inc != in.Inc {
			t.Fatalf("%T: header fields mangled:\nin  %+v\nout %+v", m, in, out)
		}
		if !sameMessage(in.Msg, out.Msg) {
			t.Fatalf("%T: message mangled:\nin  %#v\nout %#v", m, in.Msg, out.Msg)
		}
		if _, err := dec.Decode(); err != io.EOF {
			t.Fatalf("%T: trailing decode: err = %v, want io.EOF", m, err)
		}
	}
}

// TestGobBinaryDifferential encodes the same envelope stream once per
// format and checks both decode to identical results — the differential
// guarantee the mixed-version interop window rests on.
func TestGobBinaryDifferential(t *testing.T) {
	msgs := allWireMessages()
	decodeAll := func(f WireFormat) []Envelope {
		t.Helper()
		var buf bytes.Buffer
		enc := NewEncoderFormat(&buf, f)
		for i, m := range msgs {
			env := Envelope{From: 1, To: 2, Seq: uint64(i + 1), Epoch: 7, Msg: m}
			if err := enc.EncodeBuffered(env); err != nil {
				t.Fatalf("%v encode %T: %v", f, m, err)
			}
		}
		// A control frame of each kind rides along.
		for _, ctl := range []uint8{CtlPing, CtlAck} {
			if err := enc.EncodeBuffered(Envelope{From: 1, To: 2, Epoch: 7, Ctl: ctl, Ack: 12, Inc: 9}); err != nil {
				t.Fatalf("%v encode ctl %d: %v", f, ctl, err)
			}
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(&buf)
		var out []Envelope
		for {
			env, err := dec.Decode()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%v decode: %v", f, err)
			}
			out = append(out, env)
		}
		if dec.Format() != f {
			t.Fatalf("sniffed %v, want %v", dec.Format(), f)
		}
		return out
	}
	gobOut := decodeAll(WireGob)
	binOut := decodeAll(WireBinary)
	if len(gobOut) != len(binOut) {
		t.Fatalf("frame counts differ: gob %d, binary %d", len(gobOut), len(binOut))
	}
	for i := range gobOut {
		g, b := gobOut[i], binOut[i]
		if g.From != b.From || g.To != b.To || g.SrcHost != b.SrcHost || g.Seq != b.Seq ||
			g.Epoch != b.Epoch || g.Ctl != b.Ctl || g.Ack != b.Ack || g.Inc != b.Inc {
			t.Errorf("frame %d: headers differ:\ngob    %+v\nbinary %+v", i, g, b)
		}
		if !sameMessage(g.Msg, b.Msg) {
			t.Errorf("frame %d: messages differ:\ngob    %#v\nbinary %#v", i, g.Msg, b.Msg)
		}
	}
}

// TestBinaryGoldenLayout pins the exact bytes of one probe frame. A
// change here is a wire-protocol break: it needs a new version byte,
// not a test update (DESIGN.md §9 evolution rules).
func TestBinaryGoldenLayout(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoderFormat(&buf, WireBinary)
	err := enc.Encode(Envelope{
		From: 0x01020304, To: 0x11121314, SrcHost: 0x21222324,
		Seq: 0x3132333435363738, Epoch: 0x4142434445464748,
		Ack: 0x5152535455565758, Inc: 0x6162636465666768,
		Msg: Probe{Tag: id.Tag{Initiator: 0x71727374, N: 0x8182838485868788}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	le := binary.LittleEndian
	want := []byte{0xB1} // stream version byte
	want = append(want, le.AppendUint32(nil, binHdrTail+12)...)
	want = append(want, CtlData, tagProbe)
	want = append(want, le.AppendUint32(nil, 0x01020304)...)
	want = append(want, le.AppendUint32(nil, 0x11121314)...)
	want = append(want, le.AppendUint32(nil, 0x21222324)...)
	want = append(want, le.AppendUint64(nil, 0x3132333435363738)...)
	want = append(want, le.AppendUint64(nil, 0x4142434445464748)...)
	want = append(want, le.AppendUint64(nil, 0x5152535455565758)...)
	want = append(want, le.AppendUint64(nil, 0x6162636465666768)...)
	want = append(want, le.AppendUint32(nil, 0x71727374)...)
	want = append(want, le.AppendUint64(nil, 0x8182838485868788)...)
	if !bytes.Equal(got, want) {
		t.Fatalf("golden frame mismatch:\ngot  % x\nwant % x", got, want)
	}
}

// discard is a Write sink that cannot trigger bufio growth paths.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestBinaryEncodeZeroAlloc is the tentpole's contract: steady-state
// encoding of probe traffic — the message the detection algorithm sends
// most — performs zero heap allocations per frame, including the
// periodic Flush.
func TestBinaryEncodeZeroAlloc(t *testing.T) {
	enc := NewEncoderFormat(discard{}, WireBinary)
	env := Envelope{From: 1, To: 2, SrcHost: 3, Seq: 1, Epoch: 99,
		Msg: Probe{Tag: id.Tag{Initiator: 1, N: 1}}}
	// Warm up: version byte out, buffers sized.
	if err := enc.Encode(env); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		env.Seq++
		if err := enc.EncodeBuffered(env); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("probe encode path: %.1f allocs/op, want 0", allocs)
	}
	// Control frames (the ack/lease traffic) must be free too.
	ack := Envelope{From: 2, To: 1, Epoch: 99, Ctl: CtlAck, Ack: 5, Inc: 1}
	if allocs := testing.AllocsPerRun(1000, func() {
		if err := enc.EncodeBuffered(ack); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("ack encode path: %.1f allocs/op, want 0", allocs)
	}
}

// TestBinaryRejectNoAlloc asserts malformed binary frames are rejected
// with sentinel errors and zero allocations — a hostile peer cannot
// make the receiver's reject path churn the heap.
func TestBinaryRejectNoAlloc(t *testing.T) {
	le := binary.LittleEndian
	frame := func(n uint32, tail []byte) []byte {
		return append(le.AppendUint32(nil, n), tail...)
	}
	// An unknown-tag data frame: structurally complete, tag 0xEE.
	badTag := make([]byte, binHdrLen)
	le.PutUint32(badTag, binHdrTail)
	badTag[4] = CtlData
	badTag[5] = 0xEE
	cases := []struct {
		name string
		pat  []byte
		want error
	}{
		// These patterns are self-synchronising: each reject consumes
		// exactly one whole pattern (the length prefix alone when the
		// frame is never read, the full frame when it is), so the decoder
		// hits the same reject path on every call.
		{"oversized-length-prefix", frame(maxFrameLen+1, nil), ErrFrameTooLarge},
		{"undersized-length-prefix", frame(binHdrTail-1, nil), ErrBadFrame},
		{"unknown-type-tag", badTag, ErrUnknownTag},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stream := append([]byte{binMagic}, bytes.Repeat(tc.pat, 300)...)
			dec := NewDecoder(bytes.NewReader(stream))
			// Warm up: sniff the format, size the scratch.
			if _, err := dec.Decode(); !errors.Is(err, tc.want) {
				t.Fatalf("warmup decode: err = %v, want %v", err, tc.want)
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := dec.Decode(); !errors.Is(err, tc.want) {
					t.Fatalf("decode: err = %v, want %v", err, tc.want)
				}
			})
			if allocs != 0 {
				t.Fatalf("reject path: %.1f allocs/op, want 0", allocs)
			}
		})
	}
}

// TestBinaryDecodeRejects covers the malformed-frame taxonomy the
// sentinels partition.
func TestBinaryDecodeRejects(t *testing.T) {
	le := binary.LittleEndian
	mk := func(mut func(b []byte) []byte) []byte {
		// A valid probe frame, then mutated.
		var buf bytes.Buffer
		enc := NewEncoderFormat(&buf, WireBinary)
		if err := enc.Encode(Envelope{From: 1, To: 2, Seq: 1, Epoch: 1,
			Msg: Probe{Tag: id.Tag{Initiator: 1, N: 1}}}); err != nil {
			t.Fatal(err)
		}
		return mut(buf.Bytes())
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"truncated-header", mk(func(b []byte) []byte { return b[:7] }), ErrTruncatedFrame},
		{"truncated-payload", mk(func(b []byte) []byte { return b[:len(b)-3] }), ErrTruncatedFrame},
		{"payload-size-mismatch", mk(func(b []byte) []byte {
			le.PutUint32(b[1:], binHdrTail+11) // probe payload is 12
			return b[:len(b)-1]
		}), ErrBadFrame},
		{"data-frame-tag-none", mk(func(b []byte) []byte {
			le.PutUint32(b[1:], binHdrTail)
			b[6] = tagNone
			return b[:1+binHdrLen]
		}), ErrNilMessage},
		{"unknown-ctl", mk(func(b []byte) []byte {
			le.PutUint32(b[1:], binHdrTail)
			b[5] = 7 // Ctl
			b[6] = tagNone
			return b[:1+binHdrLen]
		}), ErrUnknownCtl},
		{"ctl-frame-with-payload", mk(func(b []byte) []byte {
			b[5] = CtlPing
			return b
		}), ErrBadFrame},
		{"wfgd-count-overruns", func() []byte {
			var buf bytes.Buffer
			enc := NewEncoderFormat(&buf, WireBinary)
			if err := enc.Encode(Envelope{From: 1, To: 2, Seq: 1, Epoch: 1,
				Msg: WFGD{Edges: []id.Edge{{From: 1, To: 2}}}}); err != nil {
				t.Fatal(err)
			}
			b := buf.Bytes()
			le.PutUint32(b[1+binHdrLen:], 1<<20) // claim 2^20 edges, carry 1
			return b
		}(), ErrBadFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dec := NewDecoder(bytes.NewReader(tc.data))
			if _, err := dec.Decode(); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestTypedNilRejected extends the nil-message guard to typed nils in
// both formats: (*Probe)(nil) passes an == nil comparison but must be
// rejected with the same ErrNilMessage as an untyped nil.
func TestTypedNilRejected(t *testing.T) {
	for _, f := range []WireFormat{WireBinary, WireGob} {
		enc := NewEncoderFormat(&bytes.Buffer{}, f)
		err := enc.EncodeBuffered(Envelope{From: 1, To: 2, Msg: (*Probe)(nil)})
		if !errors.Is(err, ErrNilMessage) {
			t.Errorf("%v: typed-nil message: err = %v, want ErrNilMessage", f, err)
		}
		// An alien non-nil type is a different failure: unknown, not nil.
		err = enc.EncodeBuffered(Envelope{From: 1, To: 2, Msg: alienMsg{}})
		if !errors.Is(err, ErrUnknownMessage) {
			t.Errorf("%v: alien message: err = %v, want ErrUnknownMessage", f, err)
		}
	}
}

// alienMsg is a Message type outside the wire taxonomy.
type alienMsg struct{}

func (alienMsg) Kind() Kind { return Kind(998) }

// TestFormatSniffing checks one decoder accepts whichever format the
// peer speaks — the property mixed-version links depend on — and that
// Format() reports it so acks can be answered in kind.
func TestFormatSniffing(t *testing.T) {
	for _, f := range []WireFormat{WireBinary, WireGob} {
		var buf bytes.Buffer
		enc := NewEncoderFormat(&buf, f)
		if err := enc.Encode(Envelope{From: 3, To: 4, Seq: 1, Epoch: 5,
			Msg: Probe{Tag: id.Tag{Initiator: 3, N: 8}}}); err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(&buf)
		env, err := dec.Decode()
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if dec.Format() != f {
			t.Fatalf("sniffed %v, want %v", dec.Format(), f)
		}
		if p, ok := env.Msg.(Probe); !ok || p.Tag.N != 8 {
			t.Fatalf("%v: decoded %#v", f, env.Msg)
		}
	}
}

// TestBinaryClusterPayload pins the two properties the cluster layer
// depends on: a decoded Cluster payload is an independent copy (not a
// view of the decoder's reusable scratch), and a count that disagrees
// with the frame length is rejected, never over-read.
func TestBinaryClusterPayload(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoderFormat(&buf, WireBinary)
	payload := []byte{9, 8, 7, 6}
	for i := 0; i < 2; i++ {
		if err := enc.EncodeBuffered(Envelope{From: 1, To: 2, Seq: uint64(i + 1), Epoch: 1,
			Msg: Cluster{Payload: payload}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	first, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	got := first.Msg.(Cluster).Payload
	saved := append([]byte(nil), got...)
	if _, err := dec.Decode(); err != nil { // reuses the scratch buffer
		t.Fatal(err)
	}
	if !bytes.Equal(got, saved) {
		t.Fatalf("payload aliased decoder scratch: now % x, was % x", got, saved)
	}
	// Count/length disagreement is ErrBadFrame.
	if _, err := binDecodePayload(tagCluster, []byte{5, 0, 0, 0, 1, 2}, false); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short payload: err = %v, want ErrBadFrame", err)
	}
	if _, err := binDecodePayload(tagCluster, []byte{1, 0, 0}, false); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated count: err = %v, want ErrBadFrame", err)
	}
}

// TestBinaryDecodeSingletons checks the payload-free messages decode to
// the pre-boxed singletons (no per-frame boxing allocation).
func TestBinaryDecodeSingletons(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoderFormat(&buf, WireBinary)
	for _, m := range []Message{Request{}, Request{Rejoin: true}, Reply{}, CommWork{}} {
		if err := enc.EncodeBuffered(Envelope{From: 1, To: 2, Seq: 1, Epoch: 1, Msg: m}); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	for _, want := range []Message{boxedRequest, boxedRejoin, boxedReply, boxedCommWork} {
		env, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if env.Msg != want {
			t.Fatalf("decoded %#v, want shared singleton %#v", env.Msg, want)
		}
	}
}
