package msg

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/id"
)

// FuzzDecoder feeds arbitrary bytes to the envelope decoder: it must
// either decode cleanly or return an error — never panic — because the
// TCP transport trusts it with whatever arrives on the wire.
func FuzzDecoder(f *testing.F) {
	// Seed with a few valid streams.
	seedMsgs := []Message{
		Request{},
		Probe{Tag: id.Tag{Initiator: 1, N: 2}},
		WFGD{Edges: []id.Edge{{From: 1, To: 2}}},
		CtrlAcquire{Txn: 3, Resource: 4, Mode: LockWrite, Inc: 1},
	}
	for _, m := range seedMsgs {
		// One valid stream per format: the decoder sniffs and must
		// survive arbitrary mutations of either.
		for _, format := range []WireFormat{WireBinary, WireGob} {
			var buf bytes.Buffer
			if err := NewEncoderFormat(&buf, format).Encode(Envelope{From: 1, To: 2, Msg: m}); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.Bytes())
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02})
	// Binary-codec hostile shapes: truncated header, oversized length
	// prefix, undersized length prefix, unknown type tag, data frame
	// with tag 0 (the "typed-nil bytes" a buggy encoder would emit),
	// control frame with payload, unknown control discriminator.
	f.Add([]byte{binMagic})
	f.Add([]byte{binMagic, 46, 0, 0, 0, 0, 1})
	f.Add([]byte{binMagic, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(append([]byte{binMagic, 46, 0, 0, 0, 0, 0xEE}, make([]byte, 44)...))
	f.Add(append([]byte{binMagic, 46, 0, 0, 0, 0, 0}, make([]byte, 44)...))
	f.Add(append([]byte{binMagic, 47, 0, 0, 0, 1, 0}, make([]byte, 45)...))
	f.Add(append([]byte{binMagic, 46, 0, 0, 0, 9, 0}, make([]byte, 44)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		for i := 0; i < 16; i++ {
			env, err := dec.Decode()
			if err != nil {
				if err == io.EOF {
					return
				}
				return // any non-panic error is acceptable
			}
			// A successfully decoded envelope must carry a usable
			// message.
			if env.Msg == nil {
				t.Fatal("decoded envelope with nil message")
			}
			_ = env.Msg.Kind().String()
		}
	})
}

// FuzzWFGDCanonical checks the canonicalization never panics and is
// idempotent for arbitrary edge lists.
func FuzzWFGDCanonical(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, raw []byte) {
		edges := make([]id.Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, id.Edge{From: id.Proc(raw[i]), To: id.Proc(raw[i+1])})
		}
		canon, key := WFGD{Edges: edges}.Canonical()
		canon2, key2 := canon.Canonical()
		if key != key2 || len(canon.Edges) != len(canon2.Edges) {
			t.Fatalf("canonicalization not idempotent: %q vs %q", key, key2)
		}
	})
}
