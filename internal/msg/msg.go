// Package msg defines the message taxonomy of the library. The paper
// distinguishes three kinds of traffic in the basic model — requests,
// replies, and probes ("probes are concerned with deadlock detection
// exclusively and are distinct from requests and replies", §2.4) — plus
// the edge-set messages of the WFGD computation (§5) and the controller
// messages of the DDB model (§6). Every message carries enough identity
// for the FIFO-checking tracer and the metrics counters to classify it.
package msg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/id"
)

// Kind classifies a message for metrics and tracing.
type Kind int

// Message kinds. Request/Reply/Probe/WFGD belong to the basic model;
// the Ctrl* kinds belong to the DDB model of §6.
const (
	KindRequest Kind = iota + 1
	KindReply
	KindProbe
	KindWFGD
	KindCtrlAcquire
	KindCtrlGranted
	KindCtrlRelease
	KindCtrlProbe
	KindCtrlAbort
	KindBaselineReport
	KindBaselineDecision
	KindCommWork
	KindCommQuery
	KindCommReply
	KindCluster
)

var kindNames = map[Kind]string{
	KindRequest:          "request",
	KindReply:            "reply",
	KindProbe:            "probe",
	KindWFGD:             "wfgd",
	KindCtrlAcquire:      "ctrl-acquire",
	KindCtrlGranted:      "ctrl-granted",
	KindCtrlRelease:      "ctrl-release",
	KindCtrlProbe:        "ctrl-probe",
	KindCtrlAbort:        "ctrl-abort",
	KindBaselineReport:   "baseline-report",
	KindBaselineDecision: "baseline-decision",
	KindCommWork:         "comm-work",
	KindCommQuery:        "comm-query",
	KindCommReply:        "comm-reply",
	KindCluster:          "cluster",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Message is implemented by every wire message in the system.
type Message interface {
	Kind() Kind
}

// Request asks the receiver to carry out an action for the sender; its
// send creates a grey outgoing edge (G1) which turns black on receipt
// (G2).
//
// Rejoin marks a re-announcement after crash recovery: the sender is
// still waiting on an edge it created earlier, and the receiver — which
// restarted and lost the pending-request state of its previous
// incarnation — must rebuild that dependent-set entry. A receiver that
// already has the sender's request on file treats a Rejoin request as
// an idempotent no-op instead of a duplicate-request protocol error.
type Request struct {
	Rejoin bool
}

// Kind implements Message.
func (Request) Kind() Kind { return KindRequest }

// Reply answers an earlier Request; its send whitens the edge (G3) and
// its receipt deletes the edge (G4). Only active processes send replies.
type Reply struct{}

// Kind implements Message.
func (Reply) Kind() Kind { return KindReply }

// Probe is the deadlock-detection message of the basic model, tagged
// with the probe computation (i,n) that it belongs to (§3.2).
type Probe struct {
	Tag id.Tag
}

// Kind implements Message.
func (Probe) Kind() Kind { return KindProbe }

// WFGD carries a set of edges known to lie on permanent black paths
// leading from the receiver (§5). Edges are kept sorted so that two
// messages with the same edge set compare equal, which the algorithm's
// "never send the same message twice" rule depends on.
type WFGD struct {
	Edges []id.Edge
}

// Kind implements Message.
func (WFGD) Kind() Kind { return KindWFGD }

// Canonical returns a copy of m with the edge set sorted and
// de-duplicated, plus a string key usable for duplicate suppression.
func (m WFGD) Canonical() (WFGD, string) {
	edges := make([]id.Edge, len(m.Edges))
	copy(edges, m.Edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	dedup := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			dedup = append(dedup, e)
		}
	}
	var b strings.Builder
	for _, e := range dedup {
		fmt.Fprintf(&b, "%d>%d;", e.From, e.To)
	}
	return WFGD{Edges: dedup}, b.String()
}

// LockMode distinguishes read (shared) from write (exclusive) locks in
// the DDB lock manager. The paper notes lock-mode details are orthogonal
// (§6.2); we implement the standard two modes to make the substrate
// realistic.
type LockMode int

// Lock modes.
const (
	LockRead LockMode = iota + 1
	LockWrite
)

// String returns "read" or "write".
func (m LockMode) String() string {
	switch m {
	case LockRead:
		return "read"
	case LockWrite:
		return "write"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// CtrlAcquire is sent by controller Cj to controller Cm when one of
// Cj's processes needs a resource managed by Cm (§6.2: "C_j transmits
// the request on to process (Ti,Sm) via controller Cm"). Its send
// creates a grey inter-controller edge (G3 of the DDB axioms) which
// turns black when Cm receives it (G4).
type CtrlAcquire struct {
	Txn      id.Txn
	Resource id.Resource
	Mode     LockMode
	// Inc distinguishes transaction incarnations across abort/retry so
	// a stale message from a previous incarnation can never corrupt a
	// new one.
	Inc uint32
}

// Kind implements Message.
func (CtrlAcquire) Kind() Kind { return KindCtrlAcquire }

// CtrlGranted tells the requesting controller that the remote agent has
// acquired the resource; its send whitens the inter-controller edge (G5)
// and its receipt deletes the edge (G6).
type CtrlGranted struct {
	Txn      id.Txn
	Resource id.Resource
	Inc      uint32
}

// Kind implements Message.
func (CtrlGranted) Kind() Kind { return KindCtrlGranted }

// CtrlRelease tells a remote controller that the transaction no longer
// needs the resource (commit or abort).
type CtrlRelease struct {
	Txn      id.Txn
	Resource id.Resource
	Inc      uint32
}

// Kind implements Message.
func (CtrlRelease) Kind() Kind { return KindCtrlRelease }

// CtrlProbe is the DDB probe of §6.5: it carries the computation tag
// (j,n) and the identity of the inter-controller edge it is sent along.
type CtrlProbe struct {
	Tag  id.CtrlTag
	Edge id.AgentEdge
}

// Kind implements Message.
func (CtrlProbe) Kind() Kind { return KindCtrlProbe }

// CtrlAbort instructs a remote controller to abandon a transaction's
// agent (victim resolution; the paper defers deadlock breaking to
// [3,6], we implement the standard victim-abort).
type CtrlAbort struct {
	Txn id.Txn
}

// Kind implements Message.
func (CtrlAbort) Kind() Kind { return KindCtrlAbort }

// BaselineReport carries a site's local wait-for fragment to the
// centralized baseline coordinator.
type BaselineReport struct {
	Site  id.Site
	Edges []id.AgentEdge
}

// Kind implements Message.
func (BaselineReport) Kind() Kind { return KindBaselineReport }

// BaselineDecision carries the coordinator's verdict back to a site.
type BaselineDecision struct {
	Deadlocked []id.Txn
}

// Kind implements Message.
func (BaselineDecision) Kind() Kind { return KindBaselineDecision }

// CommWork is an application message of the communication (OR) model
// extension: receiving one from a member of its dependent set unblocks
// an OR-waiting process.
type CommWork struct{}

// Kind implements Message.
func (CommWork) Kind() Kind { return KindCommWork }

// CommQuery is the query of the Chandy–Misra–Haas communication-model
// algorithm, tagged with the initiator and its computation sequence
// number.
type CommQuery struct {
	Init id.Proc
	Seq  uint64
}

// Kind implements Message.
func (CommQuery) Kind() Kind { return KindCommQuery }

// CommReply answers a CommQuery of the same (Init, Seq) computation.
type CommReply struct {
	Init id.Proc
	Seq  uint64
}

// Kind implements Message.
func (CommReply) Kind() Kind { return KindCommReply }

// Cluster is the control-plane carrier of internal/cluster: membership
// gossip, routing-directory updates, and live-migration state transfer
// all ride in Payload, whose inner encoding belongs to that package
// (decode-or-reject, SnapReader-style). The transport treats a Cluster
// message like any other data frame — sequenced, resequenced, replayed
// — which is exactly why the control plane uses it: gossip and
// migration inherit the per-pair FIFO and no-loss guarantees the
// paper's proofs demand of application traffic.
type Cluster struct {
	Payload []byte
}

// Kind implements Message.
func (Cluster) Kind() Kind { return KindCluster }

// Compile-time interface checks.
var (
	_ Message = Cluster{}
	_ Message = CommWork{}
	_ Message = CommQuery{}
	_ Message = CommReply{}
	_ Message = Request{}
	_ Message = Reply{}
	_ Message = Probe{}
	_ Message = WFGD{}
	_ Message = CtrlAcquire{}
	_ Message = CtrlGranted{}
	_ Message = CtrlRelease{}
	_ Message = CtrlProbe{}
	_ Message = CtrlAbort{}
	_ Message = BaselineReport{}
	_ Message = BaselineDecision{}
)
