package msg

// Standalone envelope-frame helpers for callers that persist frames
// outside a live connection — the write-ahead envelope log re-uses the
// §9 wire encoding byte for byte, so a logged record is exactly the
// frame the transport delivered and the two codecs can never drift.
//
// The stream-oriented Encoder/Decoder pair stays the wire API: these
// helpers frame single envelopes into and out of caller-owned byte
// slices, with no stream version byte and no pooled-message ownership
// (a decoded message is always a fresh value — a log replayed hours
// later must not hand out pointers into a connection's recycle pool).

// AppendEnvelopeFrame appends the complete §9 binary encoding of env
// (length prefix included) to dst and returns the grown slice. On a
// rejected message dst is returned unchanged with one of the package's
// sentinel errors.
func AppendEnvelopeFrame(dst []byte, env Envelope) ([]byte, error) {
	return appendFrame(dst, env)
}

// DecodeEnvelopeFrame decodes one §9 binary frame from the front of b,
// returning the envelope and the number of bytes consumed. It fails
// with ErrTruncatedFrame when b ends mid-frame and with the codec's
// other sentinel errors on structural corruption; a failed decode
// consumes nothing. Messages decode into their value forms, never the
// connection pools'.
func DecodeEnvelopeFrame(b []byte) (Envelope, int, error) {
	if len(b) < 4 {
		return Envelope{}, 0, ErrTruncatedFrame
	}
	n := int(le.Uint32(b))
	switch {
	case n < binHdrTail:
		return Envelope{}, 0, ErrBadFrame
	case n > maxFrameLen:
		return Envelope{}, 0, ErrFrameTooLarge
	}
	if len(b) < 4+n {
		return Envelope{}, 0, ErrTruncatedFrame
	}
	f := b[4 : 4+n]
	env := Envelope{
		Ctl:     f[0],
		From:    int32(le.Uint32(f[2:])),
		To:      int32(le.Uint32(f[6:])),
		SrcHost: int32(le.Uint32(f[10:])),
		Seq:     le.Uint64(f[14:]),
		Epoch:   le.Uint64(f[22:]),
		Ack:     le.Uint64(f[30:]),
		Inc:     le.Uint64(f[38:]),
	}
	tag := f[1]
	payload := f[binHdrTail:]
	if env.Ctl != CtlData {
		if env.Ctl > CtlAck {
			return Envelope{}, 0, ErrUnknownCtl
		}
		if tag != tagNone || len(payload) != 0 {
			return Envelope{}, 0, ErrBadFrame
		}
		return env, 4 + n, nil
	}
	m, err := binDecodePayload(tag, payload, false)
	if err != nil {
		return Envelope{}, 0, err
	}
	env.Msg = m
	return env, 4 + n, nil
}
