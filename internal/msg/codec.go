package msg

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
)

// Envelope is the wire frame exchanged by the TCP transport: a routed
// message between two node endpoints. Node identifiers are opaque
// int32s assigned by the transport layer.
type Envelope struct {
	From int32
	To   int32
	Msg  Message
}

func init() {
	// gob needs the concrete types that may appear behind the Message
	// interface. Registration is deterministic and side-effect free,
	// which is the sanctioned use of init.
	gob.Register(Request{})
	gob.Register(Reply{})
	gob.Register(Probe{})
	gob.Register(WFGD{})
	gob.Register(CtrlAcquire{})
	gob.Register(CtrlGranted{})
	gob.Register(CtrlRelease{})
	gob.Register(CtrlProbe{})
	gob.Register(CtrlAbort{})
	gob.Register(BaselineReport{})
	gob.Register(BaselineDecision{})
	gob.Register(CommWork{})
	gob.Register(CommQuery{})
	gob.Register(CommReply{})
}

// Encoder writes envelopes to a stream.
type Encoder struct {
	bw  *bufio.Writer
	enc *gob.Encoder
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	bw := bufio.NewWriter(w)
	return &Encoder{bw: bw, enc: gob.NewEncoder(bw)}
}

// Encode writes one envelope and flushes it to the underlying stream.
func (e *Encoder) Encode(env Envelope) error {
	if env.Msg == nil {
		return fmt.Errorf("encode envelope %d->%d: nil message", env.From, env.To)
	}
	if err := e.enc.Encode(env); err != nil {
		return fmt.Errorf("encode envelope: %w", err)
	}
	if err := e.bw.Flush(); err != nil {
		return fmt.Errorf("flush envelope: %w", err)
	}
	return nil
}

// Decoder reads envelopes from a stream.
type Decoder struct {
	dec *gob.Decoder
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{dec: gob.NewDecoder(bufio.NewReader(r))}
}

// Decode reads one envelope. It returns io.EOF when the stream ends
// cleanly between frames. A structurally valid gob stream that carries
// no message (possible with a hand-crafted or corrupted frame) is
// rejected as an error rather than surfacing a nil message to handlers.
func (d *Decoder) Decode() (Envelope, error) {
	var env Envelope
	if err := d.dec.Decode(&env); err != nil {
		if err == io.EOF {
			return Envelope{}, io.EOF
		}
		return Envelope{}, fmt.Errorf("decode envelope: %w", err)
	}
	if env.Msg == nil {
		return Envelope{}, fmt.Errorf("decode envelope %d->%d: missing message", env.From, env.To)
	}
	return env, nil
}
