package msg

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"reflect"
)

// Envelope is the wire frame exchanged by the TCP transport: a routed
// message between two node endpoints. Node identifiers are opaque
// int32s assigned by the transport layer.
//
// Seq and Epoch implement the transport's reconnect protocol. Seq
// numbers the frames of one ordered (From,To) pair, starting at 1 and
// increasing by 1 per frame, so a receiver can drop duplicates and
// resequence frames replayed across a re-dialed connection while
// preserving the per-pair FIFO guarantee (axiom P4 + §2.4 in-order
// delivery). Epoch identifies one sender incarnation of the pair: a
// sender that restarts (losing its sequence counter) picks a fresh
// Epoch, telling the receiver to reset its expected sequence to 1.
// Seq == 0 marks an unsequenced frame from a sender predating this
// protocol; such frames are delivered as-is.
//
// Ctl distinguishes transport control frames from data frames. Control
// frames carry no Message and are consumed by the transport itself —
// they never reach a handler and never occupy a slot in the pair's
// sequence space:
//
//   - CtlPing (sender→receiver on the outbound connection) solicits an
//     acknowledgement; the lease-based failure detector counts missed
//     acks to declare a peer down.
//   - CtlAck (receiver→sender on the *inbound* connection, i.e. flowing
//     against the data) reports in Ack the highest contiguously
//     delivered sequence number of the epoch named in Epoch, letting
//     the sender prune its replay buffer, and carries in Inc the
//     receiver's inbox incarnation so the sender can tell a restarted
//     receiver (fresh incarnation, protocol state gone) from one that
//     merely lost a connection.
//
// SrcHost is the host-level multiplexed addressing extension: when
// nonzero, the frame belongs to a *host* stream — one TCP link carries
// the traffic of every node co-hosted at SrcHost toward the receiving
// host, and Seq/Epoch sequence that shared stream rather than the
// (From,To) pair. From/To still name the node endpoints, so the
// receiving host demultiplexes by To after resequencing by (SrcHost,
// Epoch, Seq). SrcHost == 0 is the legacy per-node stream addressing;
// the two coexist on one transport, which is what lets the conformance
// harness replay identical schedules through either path. Host
// identifiers are therefore required to be positive.
type Envelope struct {
	From    int32
	To      int32
	SrcHost int32
	Seq     uint64
	Epoch   uint64
	Msg     Message
	Ctl     uint8
	Ack     uint64
	Inc     uint64
}

// Control-frame discriminators for Envelope.Ctl.
const (
	CtlData uint8 = iota // ordinary data frame carrying Msg
	CtlPing              // liveness probe, answered with a CtlAck
	CtlAck               // cumulative delivery acknowledgement
)

// WireFormat selects the frame encoding an Encoder produces. Decoders
// need no selection: they sniff the stream's first byte (see binMagic)
// and accept either format, which is what lets mixed-version links
// interoperate during the migration window.
type WireFormat int

const (
	// WireBinary is the hand-rolled length-prefixed binary codec of
	// binary.go — the default. Zero heap allocations per steady-state
	// frame encoded.
	WireBinary WireFormat = iota
	// WireGob is the reflection-based gob framing every release through
	// PR 5 spoke. Kept for one release so a node that must send to an
	// old peer can opt in (TCPOptions.Codec); old senders are understood
	// automatically regardless.
	WireGob
)

// String names the format.
func (f WireFormat) String() string {
	switch f {
	case WireBinary:
		return "binary"
	case WireGob:
		return "gob"
	default:
		return fmt.Sprintf("wire(%d)", int(f))
	}
}

func init() {
	// gob needs the concrete types that may appear behind the Message
	// interface. Registration is deterministic and side-effect free,
	// which is the sanctioned use of init.
	gob.Register(Request{})
	gob.Register(Reply{})
	gob.Register(Probe{})
	gob.Register(WFGD{})
	gob.Register(CtrlAcquire{})
	gob.Register(CtrlGranted{})
	gob.Register(CtrlRelease{})
	gob.Register(CtrlProbe{})
	gob.Register(CtrlAbort{})
	gob.Register(BaselineReport{})
	gob.Register(BaselineDecision{})
	gob.Register(CommWork{})
	gob.Register(CommQuery{})
	gob.Register(CommReply{})
	gob.Register(Cluster{})
}

// Encoder writes envelopes to a stream in one WireFormat.
type Encoder struct {
	bw   *bufio.Writer
	wire WireFormat
	// enc is the gob encoder, created only in WireGob mode.
	enc *gob.Encoder
	// started records that the binary stream's version byte went out.
	started bool
	// frameBuf is the reusable binary frame staging slice: appendFrame
	// builds each frame into it, then one bufio.Write copies it out.
	// Grown to the largest frame seen, never reallocated per frame in
	// steady state.
	frameBuf []byte
}

// NewEncoder returns an Encoder writing the default (binary) format.
func NewEncoder(w io.Writer) *Encoder { return NewEncoderFormat(w, WireBinary) }

// NewEncoderFormat returns an Encoder writing the given format to w.
func NewEncoderFormat(w io.Writer, f WireFormat) *Encoder {
	bw := bufio.NewWriter(w)
	e := &Encoder{bw: bw, wire: f}
	if f == WireGob {
		e.enc = gob.NewEncoder(bw)
	}
	return e
}

// Format reports the format the encoder writes.
func (e *Encoder) Format() WireFormat { return e.wire }

// Encode writes one envelope and flushes it to the underlying stream.
func (e *Encoder) Encode(env Envelope) error {
	if err := e.EncodeBuffered(env); err != nil {
		return err
	}
	return e.Flush()
}

// EncodeBuffered writes one envelope into the encoder's buffer without
// flushing, so a sender can coalesce a batch of envelopes into a single
// Flush (one syscall instead of one per frame). The buffer may still
// spill to the stream mid-batch once it fills; callers must therefore
// treat any batch whose Flush did not succeed as wholly unconfirmed and
// re-send it on a fresh connection (the TCP transport's replay/dedup
// protocol makes that retransmission safe).
//
// A data envelope whose Msg is nil — including a typed nil such as
// (*Probe)(nil), which an == nil check would wave through — is rejected
// with ErrNilMessage before anything reaches the stream. In binary mode
// a steady-state frame costs zero heap allocations: the header and
// payload are staged through the encoder's own scratch buffer straight
// into the stream's write buffer.
func (e *Encoder) EncodeBuffered(env Envelope) error {
	if e.wire == WireBinary {
		if !e.started {
			// One version byte per stream, ahead of the first frame; its
			// value tells a sniffing decoder this is not a gob stream.
			if err := e.bw.WriteByte(binMagic); err != nil {
				return err
			}
			e.started = true
		}
		buf, err := appendFrame(e.frameBuf[:0], env)
		e.frameBuf = buf
		if err != nil {
			return err
		}
		_, err = e.bw.Write(buf)
		return err
	}
	if env.Ctl == CtlData {
		if _, _, ok := binTagSize(env.Msg); !ok {
			return fmt.Errorf("encode envelope %d->%d: %w", env.From, env.To, classifyBadMessage(env.Msg))
		}
		// gob knows only the registered value types; a pooled pointer
		// form re-boxes to its value twin before hitting the stream.
		env.Msg = Deref(env.Msg)
	}
	if err := e.enc.Encode(env); err != nil {
		return fmt.Errorf("encode envelope: %w", err)
	}
	return nil
}

// Vectored reports whether the encoder's format supports AppendFrame —
// building frames into caller-owned slices for a gathered (writev)
// flush. Only the binary format does; gob callers keep the buffered
// path.
func (e *Encoder) Vectored() bool { return e.wire == WireBinary }

// errNotVectored rejects AppendFrame on a non-binary encoder.
var errNotVectored = errors.New("msg: AppendFrame requires the binary wire format")

// AppendFrame appends the complete wire encoding of env to dst and
// returns the grown slice, without touching the encoder's buffered
// stream. The first frame of the stream is preceded by the version
// byte (shared `started` state with EncodeBuffered, so the two write
// disciplines may alternate on one connection as long as the buffered
// path is flushed before vector writes). On a rejected message dst is
// returned unchanged.
func (e *Encoder) AppendFrame(dst []byte, env Envelope) ([]byte, error) {
	if e.wire != WireBinary {
		return dst, errNotVectored
	}
	withMagic := dst
	if !e.started {
		withMagic = append(dst, binMagic)
	}
	out, err := appendFrame(withMagic, env)
	if err != nil {
		// The version byte must not be considered sent when the caller
		// discards this segment: leave started untouched and hand back
		// the original slice.
		return dst, err
	}
	e.started = true
	return out, nil
}

// Flush pushes every buffered envelope to the underlying stream.
func (e *Encoder) Flush() error {
	if err := e.bw.Flush(); err != nil {
		return fmt.Errorf("flush envelopes: %w", err)
	}
	return nil
}

// isTypedNil reports whether m is a non-nil interface holding a nil
// pointer (or other nillable kind). Reached only after the tag dispatch
// failed to match a concrete value type, so reflection stays off the
// encode hot path.
func isTypedNil(m Message) bool {
	v := reflect.ValueOf(m)
	switch v.Kind() {
	case reflect.Pointer, reflect.Map, reflect.Slice, reflect.Chan, reflect.Func, reflect.Interface:
		return v.IsNil()
	}
	return false
}

// Decoder reads envelopes from a stream, accepting either wire format.
// The first byte decides: binMagic selects the binary codec, anything
// else replays the legacy gob path (gob can never emit binMagic first,
// see binary.go).
type Decoder struct {
	br   *bufio.Reader
	mode WireFormat
	// sniffed records whether the stream's format is known yet.
	sniffed bool
	// dec is the gob decoder, created only for legacy streams.
	dec *gob.Decoder
	// buf is the reusable binary payload scratch: one buffer per
	// connection, grown to the largest frame seen, never reallocated per
	// frame in steady state.
	buf []byte
	// pooled selects pool-backed pointer messages for the hot fixed-size
	// types: a steady-state data frame then decodes with zero heap
	// allocations (the pointer rides the interface word). The consumer
	// owns each pooled message for exactly one delivery and returns it
	// with Recycle. Mirrored on the gob-interop path (values are
	// converted to the pooled forms after decode) so handlers see one
	// delivery convention regardless of the peer's codec.
	pooled bool
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{br: bufio.NewReader(r)}
}

// NewPooledDecoder returns a Decoder whose hot fixed-size message types
// decode into sync.Pool-recycled pointers instead of freshly boxed
// values. Callers take on the ownership contract documented on Recycle;
// everything else matches NewDecoder.
func NewPooledDecoder(r io.Reader) *Decoder {
	return &Decoder{br: bufio.NewReader(r), pooled: true}
}

// Format reports the sniffed stream format; valid only after the first
// successful Decode. The transport uses it to answer an inbound stream
// with acknowledgements in the format its sender understands.
func (d *Decoder) Format() WireFormat { return d.mode }

// Decode reads one envelope. It returns io.EOF when the stream ends
// cleanly between frames. A structurally valid frame that carries no
// message (possible with a hand-crafted or corrupted frame) is rejected
// as an error rather than surfacing a nil message to handlers; control
// frames (Ctl != CtlData) legitimately carry none. On the binary path
// every malformed-frame rejection is one of the package's sentinel
// errors and allocates nothing.
func (d *Decoder) Decode() (Envelope, error) {
	if !d.sniffed {
		first, err := d.br.Peek(1)
		if err != nil {
			if err == io.EOF {
				return Envelope{}, io.EOF
			}
			return Envelope{}, fmt.Errorf("decode envelope: %w", err)
		}
		d.sniffed = true
		if first[0] == binMagic {
			d.mode = WireBinary
			d.br.ReadByte() // consume the version byte
		} else {
			d.mode = WireGob
			d.dec = gob.NewDecoder(d.br)
		}
	}
	if d.mode == WireBinary {
		env, buf, err := binDecodeFrame(d.br, d.buf, d.pooled)
		d.buf = buf
		return env, err
	}
	var env Envelope
	if err := d.dec.Decode(&env); err != nil {
		if err == io.EOF {
			return Envelope{}, io.EOF
		}
		return Envelope{}, fmt.Errorf("decode envelope: %w", err)
	}
	if env.Ctl == CtlData && (env.Msg == nil || isTypedNil(env.Msg)) {
		return Envelope{}, fmt.Errorf("decode envelope %d->%d: %w", env.From, env.To, ErrNilMessage)
	}
	if d.pooled {
		// Legacy gob peers produce value-typed messages; hand the caller
		// the same pooled pointer forms the binary path does, so the
		// delivery convention does not depend on the sender's codec.
		env.Msg = toPooled(env.Msg)
	}
	return env, nil
}
