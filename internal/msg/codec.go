package msg

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
)

// Envelope is the wire frame exchanged by the TCP transport: a routed
// message between two node endpoints. Node identifiers are opaque
// int32s assigned by the transport layer.
//
// Seq and Epoch implement the transport's reconnect protocol. Seq
// numbers the frames of one ordered (From,To) pair, starting at 1 and
// increasing by 1 per frame, so a receiver can drop duplicates and
// resequence frames replayed across a re-dialed connection while
// preserving the per-pair FIFO guarantee (axiom P4 + §2.4 in-order
// delivery). Epoch identifies one sender incarnation of the pair: a
// sender that restarts (losing its sequence counter) picks a fresh
// Epoch, telling the receiver to reset its expected sequence to 1.
// Seq == 0 marks an unsequenced frame from a sender predating this
// protocol; such frames are delivered as-is.
//
// Ctl distinguishes transport control frames from data frames. Control
// frames carry no Message and are consumed by the transport itself —
// they never reach a handler and never occupy a slot in the pair's
// sequence space:
//
//   - CtlPing (sender→receiver on the outbound connection) solicits an
//     acknowledgement; the lease-based failure detector counts missed
//     acks to declare a peer down.
//   - CtlAck (receiver→sender on the *inbound* connection, i.e. flowing
//     against the data) reports in Ack the highest contiguously
//     delivered sequence number of the epoch named in Epoch, letting
//     the sender prune its replay buffer, and carries in Inc the
//     receiver's inbox incarnation so the sender can tell a restarted
//     receiver (fresh incarnation, protocol state gone) from one that
//     merely lost a connection.
//
// SrcHost is the host-level multiplexed addressing extension: when
// nonzero, the frame belongs to a *host* stream — one TCP link carries
// the traffic of every node co-hosted at SrcHost toward the receiving
// host, and Seq/Epoch sequence that shared stream rather than the
// (From,To) pair. From/To still name the node endpoints, so the
// receiving host demultiplexes by To after resequencing by (SrcHost,
// Epoch, Seq). SrcHost == 0 is the legacy per-node stream addressing;
// the two coexist on one transport, which is what lets the conformance
// harness replay identical schedules through either path. Host
// identifiers are therefore required to be positive.
type Envelope struct {
	From    int32
	To      int32
	SrcHost int32
	Seq     uint64
	Epoch   uint64
	Msg     Message
	Ctl     uint8
	Ack     uint64
	Inc     uint64
}

// Control-frame discriminators for Envelope.Ctl.
const (
	CtlData uint8 = iota // ordinary data frame carrying Msg
	CtlPing              // liveness probe, answered with a CtlAck
	CtlAck               // cumulative delivery acknowledgement
)

func init() {
	// gob needs the concrete types that may appear behind the Message
	// interface. Registration is deterministic and side-effect free,
	// which is the sanctioned use of init.
	gob.Register(Request{})
	gob.Register(Reply{})
	gob.Register(Probe{})
	gob.Register(WFGD{})
	gob.Register(CtrlAcquire{})
	gob.Register(CtrlGranted{})
	gob.Register(CtrlRelease{})
	gob.Register(CtrlProbe{})
	gob.Register(CtrlAbort{})
	gob.Register(BaselineReport{})
	gob.Register(BaselineDecision{})
	gob.Register(CommWork{})
	gob.Register(CommQuery{})
	gob.Register(CommReply{})
}

// Encoder writes envelopes to a stream.
type Encoder struct {
	bw  *bufio.Writer
	enc *gob.Encoder
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	bw := bufio.NewWriter(w)
	return &Encoder{bw: bw, enc: gob.NewEncoder(bw)}
}

// Encode writes one envelope and flushes it to the underlying stream.
func (e *Encoder) Encode(env Envelope) error {
	if err := e.EncodeBuffered(env); err != nil {
		return err
	}
	return e.Flush()
}

// EncodeBuffered writes one envelope into the encoder's buffer without
// flushing, so a sender can coalesce a batch of envelopes into a single
// Flush (one syscall instead of one per frame). The buffer may still
// spill to the stream mid-batch once it fills; callers must therefore
// treat any batch whose Flush did not succeed as wholly unconfirmed and
// re-send it on a fresh connection (the TCP transport's replay/dedup
// protocol makes that retransmission safe).
func (e *Encoder) EncodeBuffered(env Envelope) error {
	if env.Msg == nil && env.Ctl == CtlData {
		return fmt.Errorf("encode envelope %d->%d: nil message", env.From, env.To)
	}
	if err := e.enc.Encode(env); err != nil {
		return fmt.Errorf("encode envelope: %w", err)
	}
	return nil
}

// Flush pushes every buffered envelope to the underlying stream.
func (e *Encoder) Flush() error {
	if err := e.bw.Flush(); err != nil {
		return fmt.Errorf("flush envelopes: %w", err)
	}
	return nil
}

// Decoder reads envelopes from a stream.
type Decoder struct {
	dec *gob.Decoder
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{dec: gob.NewDecoder(bufio.NewReader(r))}
}

// Decode reads one envelope. It returns io.EOF when the stream ends
// cleanly between frames. A structurally valid gob stream that carries
// no message (possible with a hand-crafted or corrupted frame) is
// rejected as an error rather than surfacing a nil message to handlers;
// control frames (Ctl != CtlData) legitimately carry none.
func (d *Decoder) Decode() (Envelope, error) {
	var env Envelope
	if err := d.dec.Decode(&env); err != nil {
		if err == io.EOF {
			return Envelope{}, io.EOF
		}
		return Envelope{}, fmt.Errorf("decode envelope: %w", err)
	}
	if env.Msg == nil && env.Ctl == CtlData {
		return Envelope{}, fmt.Errorf("decode envelope %d->%d: missing message", env.From, env.To)
	}
	return env, nil
}
