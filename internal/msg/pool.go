package msg

// Decode-side message pooling — the last allocation on the wire hot
// path. Encoding a steady-state frame has been allocation-free since
// the binary codec landed (DESIGN.md §9), but decoding still paid one
// heap allocation per data frame: boxing the freshly built value
// (Probe, CtrlProbe, ...) into the Message interface. Boxing a *value*
// type always allocates; boxing a *pointer* never does. So a pooled
// decoder materialises the hot fixed-size message types behind
// sync.Pool-recycled pointers instead: Decode hands the handler a
// *Probe whose pointer word rides the interface for free, and the
// consumer returns it with Recycle once the protocol step that used it
// has run.
//
// Ownership rule: a pooled message belongs to exactly one delivery.
// The component that invokes the consuming step calls Recycle
// afterwards (the transport's dispatch mailbox for synchronous
// handlers, the engine Host's shard loop for asynchronous shard
// ingress); nothing may retain the pointer past that step. Recycle
// zeroes the struct before returning it to the pool so a stale read
// after recycling yields zero values, never another frame's payload.
//
// Only the fixed-size types of the steady-state protocol are pooled.
// Request/Reply/CommWork decode to shared immutable singletons (no
// allocation to save), and the slice-carrying types (WFGD,
// BaselineReport, BaselineDecision) allocate for their payloads anyway
// and are rare, so pooling their headers would complicate the
// ownership story for nothing.

import "sync"

var (
	probePool       = sync.Pool{New: func() any { return new(Probe) }}
	ctrlAcquirePool = sync.Pool{New: func() any { return new(CtrlAcquire) }}
	ctrlGrantedPool = sync.Pool{New: func() any { return new(CtrlGranted) }}
	ctrlReleasePool = sync.Pool{New: func() any { return new(CtrlRelease) }}
	ctrlProbePool   = sync.Pool{New: func() any { return new(CtrlProbe) }}
	ctrlAbortPool   = sync.Pool{New: func() any { return new(CtrlAbort) }}
	commQueryPool   = sync.Pool{New: func() any { return new(CommQuery) }}
	commReplyPool   = sync.Pool{New: func() any { return new(CommReply) }}
)

// Recycle returns a pooled message obtained from a pooled Decoder to
// its pool, zeroing it first so the slot cannot leak one frame's
// payload into the next. It is a no-op for every non-pooled form —
// value-typed messages, the shared singletons, slice-carrying types and
// nil — so delivery paths may call it unconditionally on whatever they
// just dispatched. The caller must not touch the message after
// Recycle.
func Recycle(m Message) {
	switch v := m.(type) {
	case *Probe:
		if v != nil {
			*v = Probe{}
			probePool.Put(v)
		}
	case *CtrlAcquire:
		if v != nil {
			*v = CtrlAcquire{}
			ctrlAcquirePool.Put(v)
		}
	case *CtrlGranted:
		if v != nil {
			*v = CtrlGranted{}
			ctrlGrantedPool.Put(v)
		}
	case *CtrlRelease:
		if v != nil {
			*v = CtrlRelease{}
			ctrlReleasePool.Put(v)
		}
	case *CtrlProbe:
		if v != nil {
			*v = CtrlProbe{}
			ctrlProbePool.Put(v)
		}
	case *CtrlAbort:
		if v != nil {
			*v = CtrlAbort{}
			ctrlAbortPool.Put(v)
		}
	case *CommQuery:
		if v != nil {
			*v = CommQuery{}
			commQueryPool.Put(v)
		}
	case *CommReply:
		if v != nil {
			*v = CommReply{}
			commReplyPool.Put(v)
		}
	}
}

// toPooled converts the hot value-typed forms into their pooled pointer
// forms. The gob-interop decode path uses it so a pooled Decoder hands
// handlers the same pointer forms regardless of which codec the peer
// spoke — one delivery convention, byte-identical verdicts across
// codecs. Non-hot forms pass through unchanged.
func toPooled(m Message) Message {
	switch v := m.(type) {
	case Probe:
		p := probePool.Get().(*Probe)
		*p = v
		return p
	case CtrlAcquire:
		p := ctrlAcquirePool.Get().(*CtrlAcquire)
		*p = v
		return p
	case CtrlGranted:
		p := ctrlGrantedPool.Get().(*CtrlGranted)
		*p = v
		return p
	case CtrlRelease:
		p := ctrlReleasePool.Get().(*CtrlRelease)
		*p = v
		return p
	case CtrlProbe:
		p := ctrlProbePool.Get().(*CtrlProbe)
		*p = v
		return p
	case CtrlAbort:
		p := ctrlAbortPool.Get().(*CtrlAbort)
		*p = v
		return p
	case CommQuery:
		p := commQueryPool.Get().(*CommQuery)
		*p = v
		return p
	case CommReply:
		p := commReplyPool.Get().(*CommReply)
		*p = v
		return p
	}
	return m
}

// IsNilPtr reports whether m is a typed-nil pointer form — a non-nil
// interface holding a nil *Probe and friends, the worst-case product of
// a buggy decoder. Protocol step switches use it to reject such frames
// instead of dereferencing them.
func IsNilPtr(m Message) bool {
	switch v := m.(type) {
	case *Probe:
		return v == nil
	case *CtrlAcquire:
		return v == nil
	case *CtrlGranted:
		return v == nil
	case *CtrlRelease:
		return v == nil
	case *CtrlProbe:
		return v == nil
	case *CtrlAbort:
		return v == nil
	case *CommQuery:
		return v == nil
	case *CommReply:
		return v == nil
	case *Request:
		return v == nil
	case *Reply:
		return v == nil
	case *CommWork:
		return v == nil
	case *WFGD:
		return v == nil
	case *BaselineReport:
		return v == nil
	case *BaselineDecision:
		return v == nil
	}
	return false
}

// Deref converts a pooled pointer form back to its value form (boxing a
// fresh interface value — this allocates, so it stays off hot paths).
// The gob encoder uses it so pointer-form messages hit the wire as the
// registered value types; anything else passes through unchanged. Typed
// nils pass through unchanged (see IsNilPtr).
func Deref(m Message) Message {
	if IsNilPtr(m) {
		return m
	}
	switch v := m.(type) {
	case *Probe:
		return *v
	case *CtrlAcquire:
		return *v
	case *CtrlGranted:
		return *v
	case *CtrlRelease:
		return *v
	case *CtrlProbe:
		return *v
	case *CtrlAbort:
		return *v
	case *CommQuery:
		return *v
	case *CommReply:
		return *v
	case *Request:
		return *v
	case *Reply:
		return *v
	case *CommWork:
		return *v
	case *WFGD:
		return *v
	case *BaselineReport:
		return *v
	case *BaselineDecision:
		return *v
	}
	return m
}
