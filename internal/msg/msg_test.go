package msg

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/id"
)

func TestKindStrings(t *testing.T) {
	kinds := []Kind{
		KindRequest, KindReply, KindProbe, KindWFGD,
		KindCtrlAcquire, KindCtrlGranted, KindCtrlRelease,
		KindCtrlProbe, KindCtrlAbort, KindBaselineReport, KindBaselineDecision,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if got := Kind(999).String(); got != "kind(999)" {
		t.Fatalf("unknown kind string = %q", got)
	}
}

func TestWFGDCanonicalSortsAndDedups(t *testing.T) {
	m := WFGD{Edges: []id.Edge{{From: 3, To: 4}, {From: 1, To: 2}, {From: 3, To: 4}, {From: 1, To: 1}}}
	canon, key := m.Canonical()
	if len(canon.Edges) != 3 {
		t.Fatalf("canonical edges = %v", canon.Edges)
	}
	for i := 1; i < len(canon.Edges); i++ {
		a, b := canon.Edges[i-1], canon.Edges[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatalf("not sorted: %v", canon.Edges)
		}
	}
	// Same set in a different order yields the same key.
	m2 := WFGD{Edges: []id.Edge{{From: 1, To: 1}, {From: 3, To: 4}, {From: 1, To: 2}}}
	if _, key2 := m2.Canonical(); key2 != key {
		t.Fatalf("keys differ: %q vs %q", key, key2)
	}
	// Different sets yield different keys.
	m3 := WFGD{Edges: []id.Edge{{From: 1, To: 2}}}
	if _, key3 := m3.Canonical(); key3 == key {
		t.Fatal("distinct sets share a key")
	}
}

// TestWFGDKeyIsSetInvariant: the canonical key depends only on the edge
// set, never on order or multiplicity.
func TestWFGDKeyIsSetInvariant(t *testing.T) {
	prop := func(raw []uint8, seed int64) bool {
		edges := make([]id.Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, id.Edge{From: id.Proc(raw[i] % 16), To: id.Proc(raw[i+1] % 16)})
		}
		_, key1 := WFGD{Edges: edges}.Canonical()
		rng := rand.New(rand.NewSource(seed))
		shuffled := make([]id.Edge, len(edges))
		copy(shuffled, edges)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		// Duplicate a random prefix to change multiplicity.
		if len(shuffled) > 0 {
			shuffled = append(shuffled, shuffled[:rng.Intn(len(shuffled))+1]...)
		}
		_, key2 := WFGD{Edges: shuffled}.Canonical()
		return key1 == key2
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	msgs := []Message{
		Request{},
		Reply{},
		Probe{Tag: id.Tag{Initiator: 7, N: 3}},
		WFGD{Edges: []id.Edge{{From: 1, To: 2}}},
		CtrlAcquire{Txn: 1, Resource: 2, Mode: LockRead, Inc: 5},
		CtrlGranted{Txn: 1, Resource: 2, Inc: 5},
		CtrlRelease{Txn: 1, Resource: 2, Inc: 5},
		CtrlProbe{Tag: id.CtrlTag{Initiator: 2, N: 9}, Edge: id.AgentEdge{
			From: id.Agent{Txn: 1, Site: 0}, To: id.Agent{Txn: 1, Site: 2}}},
		CtrlAbort{Txn: 3},
		BaselineReport{Site: 1},
		BaselineDecision{Deadlocked: []id.Txn{4}},
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for i, m := range msgs {
		if err := enc.Encode(Envelope{From: int32(i), To: int32(i + 1), Seq: uint64(i + 1), Epoch: 0xfeed, Msg: m}); err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
	}
	dec := NewDecoder(&buf)
	for i, want := range msgs {
		env, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if env.From != int32(i) || env.To != int32(i+1) {
			t.Fatalf("envelope routing corrupted: %+v", env)
		}
		if env.Seq != uint64(i+1) || env.Epoch != 0xfeed {
			t.Fatalf("envelope sequencing corrupted: %+v", env)
		}
		if env.Msg.Kind() != want.Kind() {
			t.Fatalf("decode %d: kind %v want %v", i, env.Msg.Kind(), want.Kind())
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestEncodeNilMessageFails(t *testing.T) {
	enc := NewEncoder(&bytes.Buffer{})
	if err := enc.Encode(Envelope{From: 1, To: 2}); err == nil {
		t.Fatal("nil message encoded")
	}
}

func TestLockModeStrings(t *testing.T) {
	if LockRead.String() != "read" || LockWrite.String() != "write" {
		t.Fatal("lock mode strings wrong")
	}
	if LockMode(9).String() != "mode(9)" {
		t.Fatal("unknown lock mode string wrong")
	}
}
