package msg

// The binary wire format — the hand-rolled replacement for the gob
// framing the transport shipped through PR 5. gob pays reflection, type
// descriptors and fresh allocations on every frame of every probe; the
// binary codec writes a fixed little-endian header plus a flat per-type
// payload straight into the connection's buffered writer, so a
// steady-state probe frame costs zero heap allocations to encode and
// one (the interface boxing of the decoded message) to decode.
//
// Stream layout. A binary stream opens with the single version byte
// binMagic (0xB1); everything after it is a sequence of frames. The
// byte doubles as the codec version *and* the gob/binary discriminator:
// gob's own framing starts every stream with a length whose first byte
// is either 0x00–0x7F (small value) or 0xF8–0xFF (negated byte count of
// a larger value), so 0xB1 is unreachable for a legacy peer and the
// decoder can sniff the format from the first byte alone. A stream with
// any other first byte is decoded as legacy gob — that is the one
// release of interop the migration keeps (DESIGN.md §9).
//
// Frame layout (all integers little-endian):
//
//	offset size field
//	0      4    len — byte count of the remainder (header tail + payload)
//	4      1    ctl — CtlData / CtlPing / CtlAck
//	5      1    tag — message-type tag (0 on control frames)
//	6      4    from (int32)
//	10     4    to (int32)
//	14     4    srcHost (int32)
//	18     8    seq
//	26     8    epoch
//	34     8    ack
//	42     8    inc
//	50     -    payload — flat per-type field encoding, see binPayload
//
// Rejection is allocation-free: every malformed-frame path returns one
// of the predeclared sentinel errors below, so a hostile peer spraying
// garbage cannot make the receiver allocate per rejected frame.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"

	"repro/internal/id"
)

// Encoding is append-based: appendFrame builds one complete frame onto
// a caller-owned byte slice. The buffered Encoder reuses one such slice
// per stream (so a steady-state frame still costs zero allocations),
// and the transport's vector sender builds one slice per batch slot and
// gathers them into a net.Buffers writev — same core, two write
// disciplines.

// binMagic is the stream-opening version byte of binary format v1.
// Bump it (0xB2, ...) for any layout change; the decoder treats every
// unknown leading byte as a legacy gob stream, so a new version must
// keep the byte outside gob's reachable first-byte set (0x80–0xF7).
const binMagic byte = 0xB1

// binHdrLen is the fixed frame header size including the 4-byte length
// field; binHdrTail is the part the length field counts.
const (
	binHdrLen  = 50
	binHdrTail = binHdrLen - 4
)

// maxFrameLen caps the length prefix a receiver will honour. A frame
// larger than this is rejected before any buffer is sized to it, so a
// hostile length prefix cannot pin memory. The largest legitimate
// payload (a WFGD or BaselineReport edge set) stays far below this in
// any real deployment; raise it deliberately, not accidentally.
const maxFrameLen = 1 << 24

// Sentinel decode/encode errors. They carry no per-frame detail by
// design: the reject path must not allocate (asserted by
// TestBinaryRejectNoAlloc), and the transport closes the connection on
// any decode error regardless.
var (
	// ErrNilMessage rejects a data envelope whose Msg is nil — including
	// a typed nil like (*Probe)(nil), which compares unequal to nil but
	// would still crash or confuse any downstream type dispatch.
	ErrNilMessage = errors.New("msg: nil message in data envelope")
	// ErrUnknownMessage rejects an encode of a Message type outside the
	// wire taxonomy (no type tag exists for it).
	ErrUnknownMessage = errors.New("msg: message type not in the wire taxonomy")
	// ErrFrameTooLarge rejects a length prefix above maxFrameLen.
	ErrFrameTooLarge = errors.New("msg: frame length prefix exceeds limit")
	// ErrTruncatedFrame rejects a stream that ends inside a frame.
	ErrTruncatedFrame = errors.New("msg: truncated frame")
	// ErrBadFrame rejects a structurally invalid frame: a length prefix
	// shorter than the fixed header, a payload whose size disagrees with
	// its type tag, or a control frame carrying payload bytes.
	ErrBadFrame = errors.New("msg: malformed frame")
	// ErrUnknownTag rejects a data frame whose type tag this release
	// does not know (a newer peer's type, or garbage).
	ErrUnknownTag = errors.New("msg: unknown message type tag")
	// ErrUnknownCtl rejects a control discriminator this release does
	// not know.
	ErrUnknownCtl = errors.New("msg: unknown control discriminator")
)

// Wire type tags. Stable protocol constants: never renumber, never
// reuse; append only (evolution rules in DESIGN.md §9). Tag 0 marks "no
// message" and appears only on control frames.
const (
	tagNone             byte = 0
	tagRequest          byte = 1
	tagReply            byte = 2
	tagProbe            byte = 3
	tagWFGD             byte = 4
	tagCtrlAcquire      byte = 5
	tagCtrlGranted      byte = 6
	tagCtrlRelease      byte = 7
	tagCtrlProbe        byte = 8
	tagCtrlAbort        byte = 9
	tagBaselineReport   byte = 10
	tagBaselineDecision byte = 11
	tagCommWork         byte = 12
	tagCommQuery        byte = 13
	tagCommReply        byte = 14
	tagCluster          byte = 15
)

// le is the wire byte order.
var le = binary.LittleEndian

// binTagSize returns the wire tag and flat payload size for m. ok is
// false when m's concrete type has no tag — the caller distinguishes
// typed-nil from alien types (classifyBadMessage) off the hot path.
// The pooled pointer forms a pooled Decoder hands out (see pool.go)
// match alongside the value types, so a message can be relayed or
// re-encoded without re-boxing; a typed-nil pointer never matches.
func binTagSize(m Message) (tag byte, size int, ok bool) {
	switch v := m.(type) {
	case Request:
		return tagRequest, 1, true
	case Reply:
		return tagReply, 0, true
	case Probe:
		return tagProbe, 12, true
	case *Probe:
		if v == nil {
			return 0, 0, false
		}
		return tagProbe, 12, true
	case WFGD:
		return tagWFGD, 4 + 8*len(v.Edges), true
	case CtrlAcquire:
		return tagCtrlAcquire, 13, true
	case *CtrlAcquire:
		if v == nil {
			return 0, 0, false
		}
		return tagCtrlAcquire, 13, true
	case CtrlGranted:
		return tagCtrlGranted, 12, true
	case *CtrlGranted:
		if v == nil {
			return 0, 0, false
		}
		return tagCtrlGranted, 12, true
	case CtrlRelease:
		return tagCtrlRelease, 12, true
	case *CtrlRelease:
		if v == nil {
			return 0, 0, false
		}
		return tagCtrlRelease, 12, true
	case CtrlProbe:
		return tagCtrlProbe, 28, true
	case *CtrlProbe:
		if v == nil {
			return 0, 0, false
		}
		return tagCtrlProbe, 28, true
	case CtrlAbort:
		return tagCtrlAbort, 4, true
	case *CtrlAbort:
		if v == nil {
			return 0, 0, false
		}
		return tagCtrlAbort, 4, true
	case BaselineReport:
		return tagBaselineReport, 8 + 16*len(v.Edges), true
	case BaselineDecision:
		return tagBaselineDecision, 4 + 4*len(v.Deadlocked), true
	case CommWork:
		return tagCommWork, 0, true
	case CommQuery:
		return tagCommQuery, 12, true
	case *CommQuery:
		if v == nil {
			return 0, 0, false
		}
		return tagCommQuery, 12, true
	case CommReply:
		return tagCommReply, 12, true
	case *CommReply:
		if v == nil {
			return 0, 0, false
		}
		return tagCommReply, 12, true
	case Cluster:
		return tagCluster, 4 + len(v.Payload), true
	}
	return 0, 0, false
}

// appendFrame appends the complete binary encoding of one envelope to
// dst and returns the grown slice. It is the single encode core: the
// buffered Encoder replays it into a per-stream reusable slice, the
// transport's vector sender into one slice per writev segment. On a
// rejected message dst is returned unchanged.
func appendFrame(dst []byte, env Envelope) ([]byte, error) {
	tag, size := tagNone, 0
	if env.Ctl == CtlData {
		var ok bool
		tag, size, ok = binTagSize(env.Msg)
		if !ok {
			return dst, classifyBadMessage(env.Msg)
		}
	}
	var h [binHdrLen]byte
	le.PutUint32(h[0:], uint32(binHdrTail+size))
	h[4] = env.Ctl
	h[5] = tag
	le.PutUint32(h[6:], uint32(env.From))
	le.PutUint32(h[10:], uint32(env.To))
	le.PutUint32(h[14:], uint32(env.SrcHost))
	le.PutUint64(h[18:], env.Seq)
	le.PutUint64(h[26:], env.Epoch)
	le.PutUint64(h[34:], env.Ack)
	le.PutUint64(h[42:], env.Inc)
	dst = append(dst, h[:]...)
	if tag == tagNone {
		return dst, nil
	}
	return appendPayload(dst, env.Msg), nil
}

// classifyBadMessage turns an unencodable message into the right
// sentinel: nil and typed-nil (a non-nil interface holding a nil
// pointer) are ErrNilMessage, anything else is an alien type. The
// reflection-free check exploits that every taxonomy type is a value
// type — binTagSize already rejected m, so here we only decide *why*,
// off the hot path.
func classifyBadMessage(m Message) error {
	if m == nil || isTypedNil(m) {
		return ErrNilMessage
	}
	return ErrUnknownMessage
}

// appendU32/appendU64 append one little-endian integer.
func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// appendAgent appends one id.Agent as (txn, site).
func appendAgent(dst []byte, a id.Agent) []byte {
	dst = appendU32(dst, uint32(a.Txn))
	return appendU32(dst, uint32(a.Site))
}

// appendPayload appends the flat per-type field encoding of m. The
// pooled pointer forms delegate to the same per-type encoders as their
// value twins, so both forms produce identical bytes.
func appendPayload(dst []byte, m Message) []byte {
	switch v := m.(type) {
	case Request:
		if v.Rejoin {
			return append(dst, 1)
		}
		return append(dst, 0)
	case Reply, CommWork:
		return dst
	case Probe:
		return appendProbe(dst, v)
	case *Probe:
		return appendProbe(dst, *v)
	case WFGD:
		dst = appendU32(dst, uint32(len(v.Edges)))
		for _, e := range v.Edges {
			dst = appendU32(dst, uint32(e.From))
			dst = appendU32(dst, uint32(e.To))
		}
		return dst
	case CtrlAcquire:
		return appendCtrlAcquire(dst, v)
	case *CtrlAcquire:
		return appendCtrlAcquire(dst, *v)
	case CtrlGranted:
		return appendTxnResInc(dst, uint32(v.Txn), uint32(v.Resource), v.Inc)
	case *CtrlGranted:
		return appendTxnResInc(dst, uint32(v.Txn), uint32(v.Resource), v.Inc)
	case CtrlRelease:
		return appendTxnResInc(dst, uint32(v.Txn), uint32(v.Resource), v.Inc)
	case *CtrlRelease:
		return appendTxnResInc(dst, uint32(v.Txn), uint32(v.Resource), v.Inc)
	case CtrlProbe:
		return appendCtrlProbe(dst, v)
	case *CtrlProbe:
		return appendCtrlProbe(dst, *v)
	case CtrlAbort:
		return appendU32(dst, uint32(v.Txn))
	case *CtrlAbort:
		return appendU32(dst, uint32(v.Txn))
	case BaselineReport:
		dst = appendU32(dst, uint32(v.Site))
		dst = appendU32(dst, uint32(len(v.Edges)))
		for _, e := range v.Edges {
			dst = appendAgent(dst, e.From)
			dst = appendAgent(dst, e.To)
		}
		return dst
	case BaselineDecision:
		dst = appendU32(dst, uint32(len(v.Deadlocked)))
		for _, t := range v.Deadlocked {
			dst = appendU32(dst, uint32(t))
		}
		return dst
	case CommQuery:
		return appendU64(appendU32(dst, uint32(v.Init)), v.Seq)
	case *CommQuery:
		return appendU64(appendU32(dst, uint32(v.Init)), v.Seq)
	case CommReply:
		return appendU64(appendU32(dst, uint32(v.Init)), v.Seq)
	case *CommReply:
		return appendU64(appendU32(dst, uint32(v.Init)), v.Seq)
	case Cluster:
		dst = appendU32(dst, uint32(len(v.Payload)))
		return append(dst, v.Payload...)
	}
	return dst // unreachable: binTagSize vetted the type
}

func appendProbe(dst []byte, v Probe) []byte {
	return appendU64(appendU32(dst, uint32(v.Tag.Initiator)), v.Tag.N)
}

func appendCtrlAcquire(dst []byte, v CtrlAcquire) []byte {
	dst = appendU32(dst, uint32(v.Txn))
	dst = appendU32(dst, uint32(v.Resource))
	dst = append(dst, byte(v.Mode))
	return appendU32(dst, v.Inc)
}

func appendTxnResInc(dst []byte, txn, res, inc uint32) []byte {
	return appendU32(appendU32(appendU32(dst, txn), res), inc)
}

func appendCtrlProbe(dst []byte, v CtrlProbe) []byte {
	dst = appendU32(dst, uint32(v.Tag.Initiator))
	dst = appendU64(dst, v.Tag.N)
	dst = appendAgent(dst, v.Edge.From)
	return appendAgent(dst, v.Edge.To)
}

// getAgent reads one id.Agent.
func getAgent(b []byte) id.Agent {
	return id.Agent{Txn: id.Txn(int32(le.Uint32(b[0:]))), Site: id.Site(int32(le.Uint32(b[4:])))}
}

// Pre-boxed singletons for the payload-free message values, so decoding
// them does not allocate. They are safe to share: the types carry no
// mutable state.
var (
	boxedRequest  Message = Request{}
	boxedRejoin   Message = Request{Rejoin: true}
	boxedReply    Message = Reply{}
	boxedCommWork Message = CommWork{}
)

// binDecodeFrame reads one binary frame from br. buf is the decoder's
// reusable payload scratch; the returned slice is its (possibly grown)
// replacement. pooled selects pool-backed pointer messages for the hot
// fixed-size types (see pool.go). io.EOF is returned verbatim only at a
// clean frame boundary; EOF inside a frame is ErrTruncatedFrame.
func binDecodeFrame(br *bufio.Reader, buf []byte, pooled bool) (Envelope, []byte, error) {
	// Peek+Discard instead of ReadFull into a stack array: the array
	// would escape through the io.Reader interface and cost one heap
	// allocation per frame — including per rejected frame.
	lenb, err := br.Peek(4)
	if err != nil {
		if err == io.EOF && len(lenb) == 0 {
			return Envelope{}, buf, io.EOF
		}
		return Envelope{}, buf, ErrTruncatedFrame
	}
	n := int(le.Uint32(lenb))
	br.Discard(4)
	switch {
	case n < binHdrTail:
		return Envelope{}, buf, ErrBadFrame
	case n > maxFrameLen:
		return Envelope{}, buf, ErrFrameTooLarge
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	b := buf[:n]
	if _, err := io.ReadFull(br, b); err != nil {
		return Envelope{}, buf, ErrTruncatedFrame
	}
	env := Envelope{
		Ctl:     b[0],
		From:    int32(le.Uint32(b[2:])),
		To:      int32(le.Uint32(b[6:])),
		SrcHost: int32(le.Uint32(b[10:])),
		Seq:     le.Uint64(b[14:]),
		Epoch:   le.Uint64(b[22:]),
		Ack:     le.Uint64(b[30:]),
		Inc:     le.Uint64(b[38:]),
	}
	tag := b[1]
	payload := b[binHdrTail:]
	if env.Ctl != CtlData {
		if env.Ctl > CtlAck {
			return Envelope{}, buf, ErrUnknownCtl
		}
		// Control frames carry no message: a tag or payload on one is a
		// framing error, not something to silently skip.
		if tag != tagNone || len(payload) != 0 {
			return Envelope{}, buf, ErrBadFrame
		}
		return env, buf, nil
	}
	m, err := binDecodePayload(tag, payload, pooled)
	if err != nil {
		return Envelope{}, buf, err
	}
	env.Msg = m
	return env, buf, nil
}

// binDecodePayload materialises the message for one type tag. The
// payload size must match the tag exactly — trailing bytes are a
// framing error, and declared element counts must account for every
// remaining byte. With pooled set, the hot fixed-size types come back
// as pool-backed pointers (boxing a pointer into the Message interface
// is allocation-free); the consumer returns them with Recycle.
func binDecodePayload(tag byte, b []byte, pooled bool) (Message, error) {
	switch tag {
	case tagNone:
		return nil, ErrNilMessage // a data frame must carry a message
	case tagRequest:
		if len(b) != 1 || b[0] > 1 {
			return nil, ErrBadFrame
		}
		if b[0] == 1 {
			return boxedRejoin, nil
		}
		return boxedRequest, nil
	case tagReply:
		if len(b) != 0 {
			return nil, ErrBadFrame
		}
		return boxedReply, nil
	case tagProbe:
		if len(b) != 12 {
			return nil, ErrBadFrame
		}
		t := id.Tag{Initiator: id.Proc(int32(le.Uint32(b[0:]))), N: le.Uint64(b[4:])}
		if pooled {
			p := probePool.Get().(*Probe)
			p.Tag = t
			return p, nil
		}
		return Probe{Tag: t}, nil
	case tagWFGD:
		if len(b) < 4 {
			return nil, ErrBadFrame
		}
		count := int(le.Uint32(b[0:]))
		if len(b) != 4+8*count {
			return nil, ErrBadFrame
		}
		edges := make([]id.Edge, count)
		for i := range edges {
			off := 4 + 8*i
			edges[i] = id.Edge{
				From: id.Proc(int32(le.Uint32(b[off:]))),
				To:   id.Proc(int32(le.Uint32(b[off+4:]))),
			}
		}
		return WFGD{Edges: edges}, nil
	case tagCtrlAcquire:
		if len(b) != 13 {
			return nil, ErrBadFrame
		}
		v := CtrlAcquire{
			Txn:      id.Txn(int32(le.Uint32(b[0:]))),
			Resource: id.Resource(int32(le.Uint32(b[4:]))),
			Mode:     LockMode(b[8]),
			Inc:      le.Uint32(b[9:]),
		}
		if pooled {
			p := ctrlAcquirePool.Get().(*CtrlAcquire)
			*p = v
			return p, nil
		}
		return v, nil
	case tagCtrlGranted:
		if len(b) != 12 {
			return nil, ErrBadFrame
		}
		v := CtrlGranted{
			Txn:      id.Txn(int32(le.Uint32(b[0:]))),
			Resource: id.Resource(int32(le.Uint32(b[4:]))),
			Inc:      le.Uint32(b[8:]),
		}
		if pooled {
			p := ctrlGrantedPool.Get().(*CtrlGranted)
			*p = v
			return p, nil
		}
		return v, nil
	case tagCtrlRelease:
		if len(b) != 12 {
			return nil, ErrBadFrame
		}
		v := CtrlRelease{
			Txn:      id.Txn(int32(le.Uint32(b[0:]))),
			Resource: id.Resource(int32(le.Uint32(b[4:]))),
			Inc:      le.Uint32(b[8:]),
		}
		if pooled {
			p := ctrlReleasePool.Get().(*CtrlRelease)
			*p = v
			return p, nil
		}
		return v, nil
	case tagCtrlProbe:
		if len(b) != 28 {
			return nil, ErrBadFrame
		}
		v := CtrlProbe{
			Tag:  id.CtrlTag{Initiator: id.Site(int32(le.Uint32(b[0:]))), N: le.Uint64(b[4:])},
			Edge: id.AgentEdge{From: getAgent(b[12:]), To: getAgent(b[20:])},
		}
		if pooled {
			p := ctrlProbePool.Get().(*CtrlProbe)
			*p = v
			return p, nil
		}
		return v, nil
	case tagCtrlAbort:
		if len(b) != 4 {
			return nil, ErrBadFrame
		}
		if pooled {
			p := ctrlAbortPool.Get().(*CtrlAbort)
			p.Txn = id.Txn(int32(le.Uint32(b[0:])))
			return p, nil
		}
		return CtrlAbort{Txn: id.Txn(int32(le.Uint32(b[0:])))}, nil
	case tagBaselineReport:
		if len(b) < 8 {
			return nil, ErrBadFrame
		}
		count := int(le.Uint32(b[4:]))
		if len(b) != 8+16*count {
			return nil, ErrBadFrame
		}
		edges := make([]id.AgentEdge, count)
		for i := range edges {
			off := 8 + 16*i
			edges[i] = id.AgentEdge{From: getAgent(b[off:]), To: getAgent(b[off+8:])}
		}
		return BaselineReport{Site: id.Site(int32(le.Uint32(b[0:]))), Edges: edges}, nil
	case tagBaselineDecision:
		if len(b) < 4 {
			return nil, ErrBadFrame
		}
		count := int(le.Uint32(b[0:]))
		if len(b) != 4+4*count {
			return nil, ErrBadFrame
		}
		txns := make([]id.Txn, count)
		for i := range txns {
			txns[i] = id.Txn(int32(le.Uint32(b[4+4*i:])))
		}
		return BaselineDecision{Deadlocked: txns}, nil
	case tagCommWork:
		if len(b) != 0 {
			return nil, ErrBadFrame
		}
		return boxedCommWork, nil
	case tagCommQuery:
		if len(b) != 12 {
			return nil, ErrBadFrame
		}
		if pooled {
			p := commQueryPool.Get().(*CommQuery)
			p.Init, p.Seq = id.Proc(int32(le.Uint32(b[0:]))), le.Uint64(b[4:])
			return p, nil
		}
		return CommQuery{Init: id.Proc(int32(le.Uint32(b[0:]))), Seq: le.Uint64(b[4:])}, nil
	case tagCommReply:
		if len(b) != 12 {
			return nil, ErrBadFrame
		}
		if pooled {
			p := commReplyPool.Get().(*CommReply)
			p.Init, p.Seq = id.Proc(int32(le.Uint32(b[0:]))), le.Uint64(b[4:])
			return p, nil
		}
		return CommReply{Init: id.Proc(int32(le.Uint32(b[0:]))), Seq: le.Uint64(b[4:])}, nil
	case tagCluster:
		if len(b) < 4 {
			return nil, ErrBadFrame
		}
		count := int(le.Uint32(b[0:]))
		if len(b) != 4+count {
			return nil, ErrBadFrame
		}
		// The payload must be copied out of the decoder's reusable
		// scratch: the cluster layer holds gossip/migration payloads
		// across frame boundaries.
		var p []byte
		if count > 0 {
			p = make([]byte, count)
			copy(p, b[4:])
		}
		return Cluster{Payload: p}, nil
	}
	return nil, ErrUnknownTag
}
