package msg

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/id"
)

// pooledRoundTripEnvs covers every pooled type plus the singleton and
// slice-carrying forms a pooled decoder must leave untouched.
func pooledRoundTripEnvs() []Envelope {
	return []Envelope{
		{From: 1, To: 2, Seq: 1, Epoch: 7, Msg: Probe{Tag: id.Tag{Initiator: 3, N: 9}}},
		{From: 1, To: 2, Seq: 2, Epoch: 7, Msg: CtrlAcquire{Txn: 4, Resource: 5, Mode: LockWrite, Inc: 2}},
		{From: 1, To: 2, Seq: 3, Epoch: 7, Msg: CtrlGranted{Txn: 4, Resource: 5, Inc: 2}},
		{From: 1, To: 2, Seq: 4, Epoch: 7, Msg: CtrlRelease{Txn: 4, Resource: 5, Inc: 2}},
		{From: 1, To: 2, Seq: 5, Epoch: 7, Msg: CtrlProbe{
			Tag:  id.CtrlTag{Initiator: 2, N: 11},
			Edge: id.AgentEdge{From: id.Agent{Txn: 1, Site: 2}, To: id.Agent{Txn: 3, Site: 4}},
		}},
		{From: 1, To: 2, Seq: 6, Epoch: 7, Msg: CtrlAbort{Txn: 8}},
		{From: 1, To: 2, Seq: 7, Epoch: 7, Msg: CommQuery{Init: 6, Seq: 13}},
		{From: 1, To: 2, Seq: 8, Epoch: 7, Msg: CommReply{Init: 6, Seq: 13}},
		{From: 1, To: 2, Seq: 9, Epoch: 7, Msg: Request{Rejoin: true}},
		{From: 1, To: 2, Seq: 10, Epoch: 7, Msg: Reply{}},
		{From: 1, To: 2, Seq: 11, Epoch: 7, Msg: WFGD{Edges: []id.Edge{{From: 1, To: 2}}}},
	}
}

// TestPooledDecodeRoundTrip checks a pooled decoder yields pointer
// forms for the hot types whose dereferenced payloads match what was
// sent, value/singleton forms for everything else, on both codecs.
func TestPooledDecodeRoundTrip(t *testing.T) {
	for _, wire := range []WireFormat{WireBinary, WireGob} {
		var buf bytes.Buffer
		enc := NewEncoderFormat(&buf, wire)
		envs := pooledRoundTripEnvs()
		for _, env := range envs {
			if err := enc.Encode(env); err != nil {
				t.Fatalf("%v encode: %v", wire, err)
			}
		}
		dec := NewPooledDecoder(&buf)
		for i, want := range envs {
			got, err := dec.Decode()
			if err != nil {
				t.Fatalf("%v decode %d: %v", wire, i, err)
			}
			if _, sliced := got.Msg.(WFGD); !sliced { // slice payloads do not compare with ==
				if Deref(got.Msg) != Deref(want.Msg) {
					t.Fatalf("%v frame %d: got %#v want %#v", wire, i, got.Msg, want.Msg)
				}
			}
			switch want.Msg.(type) {
			case Probe, CtrlAcquire, CtrlGranted, CtrlRelease, CtrlProbe, CtrlAbort, CommQuery, CommReply:
				switch got.Msg.(type) {
				case *Probe, *CtrlAcquire, *CtrlGranted, *CtrlRelease, *CtrlProbe, *CtrlAbort, *CommQuery, *CommReply:
				default:
					t.Fatalf("%v frame %d: hot type decoded as %T, want pooled pointer form", wire, i, got.Msg)
				}
			}
			Recycle(got.Msg)
		}
	}
}

// TestRecycleZeroes checks a recycled message comes back from the pool
// zeroed, so one frame's payload can never leak into the next.
func TestRecycleZeroes(t *testing.T) {
	p := probePool.Get().(*Probe)
	p.Tag = id.Tag{Initiator: 42, N: 99}
	Recycle(p)
	// Drain until we see the same pointer again (the pool may hold
	// others); every instance must be zero regardless.
	for i := 0; i < 64; i++ {
		q := probePool.Get().(*Probe)
		if q.Tag != (id.Tag{}) {
			t.Fatalf("pooled Probe not zeroed: %+v", q.Tag)
		}
		if q == p {
			return
		}
	}
}

// TestRecycleNonPooledNoOp checks Recycle tolerates everything a
// delivery path might hand it.
func TestRecycleNonPooledNoOp(t *testing.T) {
	Recycle(nil)
	Recycle(Probe{Tag: id.Tag{Initiator: 1}})
	Recycle(Request{})
	Recycle(boxedReply)
	Recycle(WFGD{Edges: []id.Edge{{From: 1, To: 2}}})
	Recycle((*Probe)(nil)) // typed nil must not be pooled or crash
}

// TestEncodePointerFormsByteIdentical checks re-encoding a pooled
// pointer form produces exactly the bytes of its value twin, for both
// the buffered and the vector encoder.
func TestEncodePointerFormsByteIdentical(t *testing.T) {
	pairs := []struct{ val, ptr Message }{
		{Probe{Tag: id.Tag{Initiator: 3, N: 9}}, &Probe{Tag: id.Tag{Initiator: 3, N: 9}}},
		{CtrlAcquire{Txn: 4, Resource: 5, Mode: LockRead, Inc: 1}, &CtrlAcquire{Txn: 4, Resource: 5, Mode: LockRead, Inc: 1}},
		{CtrlGranted{Txn: 4, Resource: 5, Inc: 1}, &CtrlGranted{Txn: 4, Resource: 5, Inc: 1}},
		{CtrlRelease{Txn: 4, Resource: 5, Inc: 1}, &CtrlRelease{Txn: 4, Resource: 5, Inc: 1}},
		{CtrlProbe{Tag: id.CtrlTag{Initiator: 2, N: 1}}, &CtrlProbe{Tag: id.CtrlTag{Initiator: 2, N: 1}}},
		{CtrlAbort{Txn: 8}, &CtrlAbort{Txn: 8}},
		{CommQuery{Init: 6, Seq: 13}, &CommQuery{Init: 6, Seq: 13}},
		{CommReply{Init: 6, Seq: 13}, &CommReply{Init: 6, Seq: 13}},
	}
	for _, pc := range pairs {
		var a, b bytes.Buffer
		ea, eb := NewEncoder(&a), NewEncoder(&b)
		envV := Envelope{From: 1, To: 2, Seq: 1, Epoch: 3, Msg: pc.val}
		envP := envV
		envP.Msg = pc.ptr
		if err := ea.Encode(envV); err != nil {
			t.Fatalf("%T value encode: %v", pc.val, err)
		}
		if err := eb.Encode(envP); err != nil {
			t.Fatalf("%T pointer encode: %v", pc.val, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%T: pointer form encodes differently from value form", pc.val)
		}
		vec := NewEncoder(io.Discard)
		seg, err := vec.AppendFrame(nil, envP)
		if err != nil {
			t.Fatalf("%T AppendFrame: %v", pc.val, err)
		}
		if !bytes.Equal(seg, a.Bytes()) {
			t.Fatalf("%T: vector frame differs from buffered encoding", pc.val)
		}
	}
}

// TestAppendFrameMagicOnce checks the stream version byte precedes
// exactly the first vector frame, stays unsent when the first frame is
// rejected, and that gob encoders refuse the vector path.
func TestAppendFrameMagicOnce(t *testing.T) {
	enc := NewEncoder(io.Discard)
	if !enc.Vectored() {
		t.Fatal("binary encoder must support vector frames")
	}
	if _, err := enc.AppendFrame(nil, Envelope{From: 1, To: 2, Msg: nil}); err == nil {
		t.Fatal("nil message must be rejected")
	}
	seg1, err := enc.AppendFrame(nil, Envelope{From: 1, To: 2, Seq: 1, Msg: Reply{}})
	if err != nil {
		t.Fatalf("frame 1: %v", err)
	}
	if len(seg1) == 0 || seg1[0] != binMagic {
		t.Fatal("first successful frame must carry the stream version byte")
	}
	seg2, err := enc.AppendFrame(nil, Envelope{From: 1, To: 2, Seq: 2, Msg: Reply{}})
	if err != nil {
		t.Fatalf("frame 2: %v", err)
	}
	if len(seg2) > 0 && seg2[0] == binMagic {
		t.Fatal("version byte must be sent once per stream")
	}
	gobEnc := NewEncoderFormat(io.Discard, WireGob)
	if gobEnc.Vectored() {
		t.Fatal("gob encoder must not claim vector support")
	}
	if _, err := gobEnc.AppendFrame(nil, Envelope{Msg: Reply{}}); err == nil {
		t.Fatal("gob AppendFrame must fail")
	}
}

// TestPooledDecodeZeroAllocs pins the pooled steady state: decoding a
// probe frame and recycling it performs no heap allocation.
func TestPooledDecodeZeroAllocs(t *testing.T) {
	var wire bytes.Buffer
	enc := NewEncoder(&wire)
	env := Envelope{From: 1, To: 2, Seq: 1, Epoch: 3, Msg: Probe{Tag: id.Tag{Initiator: 3, N: 9}}}
	if err := enc.Encode(env); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), wire.Bytes()...)
	r := bytes.NewReader(frame)
	dec := NewPooledDecoder(r)
	if _, err := dec.Decode(); err != nil { // warm-up: sniff + size scratch
		t.Fatal(err)
	}
	// Re-feed the same frame bytes (sans magic) through the same decoder.
	body := frame[1:]
	allocs := testing.AllocsPerRun(200, func() {
		r.Reset(body)
		dec.br.Reset(r)
		e, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		Recycle(e.Msg)
	})
	if allocs != 0 {
		t.Fatalf("pooled decode allocated %.1f times per frame, want 0", allocs)
	}
}
