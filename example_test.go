package deadlock_test

import (
	"fmt"

	deadlock "repro"
	"repro/internal/sim"
)

// The examples below are runnable godoc documentation; they use the
// deterministic simulator so their output is stable.

func ExampleNewSimulation() {
	sys, err := deadlock.NewSimulation(3, deadlock.SimOptions{Seed: 42})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := sys.Apply(deadlock.Ring(3)); err != nil {
		fmt.Println(err)
		return
	}
	sys.Run(1 << 16)
	d := sys.Detections[0]
	fmt.Printf("%v declared deadlock via computation %v\n", d.Proc, d.Tag)
	// Output:
	// p0 declared deadlock via computation (p0,n=1)
}

func ExampleNewSimulation_chainNeverDeadlocks() {
	sys, err := deadlock.NewSimulation(4, deadlock.SimOptions{Seed: 1, AutoGrant: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := sys.Apply(deadlock.Chain(4)); err != nil {
		fmt.Println(err)
		return
	}
	sys.Run(1 << 16)
	fmt.Printf("detections: %d, p0 blocked: %v\n", len(sys.Detections), sys.Procs[0].Blocked())
	// Output:
	// detections: 0, p0 blocked: false
}

func ExampleRingWithTails() {
	// Five processes on a cycle, four more blocked behind it. After
	// detection, the §5 WFGD computation gives every blocked process
	// the full set of permanently black edges it waits behind.
	sys, err := deadlock.NewSimulation(9, deadlock.SimOptions{Seed: 7})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := sys.Apply(deadlock.RingWithTails(5, 4)); err != nil {
		fmt.Println(err)
		return
	}
	sys.Run(1 << 20)
	tail := sys.Procs[8] // last tail process
	fmt.Printf("tail process %v knows %d deadlocked edges\n", tail.ID(), len(tail.BlackPaths()))
	// Output:
	// tail process p8 knows 6 deadlocked edges
}

func ExampleNewProcess() {
	// Raw protocol participants on the deterministic network: a 2-cycle
	// detected by a manually initiated probe computation.
	sched, net := deadlock.NewSimNetwork(5, nil)
	var declared deadlock.Tag
	p0, err := deadlock.NewProcess(deadlock.ProcessConfig{
		ID:        0,
		Transport: net,
		Policy:    deadlock.InitiateManually,
		OnDeadlock: func(tag deadlock.Tag) {
			declared = tag
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	p1, err := deadlock.NewProcess(deadlock.ProcessConfig{ID: 1, Transport: net, Policy: deadlock.InitiateManually})
	if err != nil {
		fmt.Println(err)
		return
	}
	_ = p0.Request(1)
	_ = p1.Request(0)
	p0.StartProbe()
	sched.Run()
	fmt.Printf("detected by %v\n", declared)
	// Output:
	// detected by (p0,n=1)
}

func ExampleNewDDB() {
	db, err := deadlock.NewDDB(deadlock.DDBOptions{
		Sites:     2,
		Resources: 2,
		Seed:      3,
		Resolve:   true,
		HoldTime:  int64(sim.Millisecond),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	w := deadlock.LockWrite
	_ = db.Submit(deadlock.TxnSpec{Txn: 0, Home: 0, Retry: true,
		Steps: []deadlock.LockStep{{Resource: 0, Mode: w}, {Resource: 1, Mode: w}}})
	_ = db.Submit(deadlock.TxnSpec{Txn: 1, Home: 1, Retry: true,
		Steps: []deadlock.LockStep{{Resource: 1, Mode: w}, {Resource: 0, Mode: w}}})
	_, done := db.RunUntilCommitted(sim.Time(10 * sim.Second))
	fmt.Printf("all committed: %v, deadlock broken: %v\n", done, db.Aborts() > 0)
	// Output:
	// all committed: true, deadlock broken: true
}

func ExampleNewCommProcess() {
	// OR-model: two workers waiting only on each other are deadlocked
	// even though either would be satisfied by any sender.
	sched, net := deadlock.NewSimNetwork(11, nil)
	declared := false
	a, err := deadlock.NewCommProcess(deadlock.CommConfig{
		ID:         0,
		Transport:  net,
		OnDeadlock: func(uint64) { declared = true },
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	b, err := deadlock.NewCommProcess(deadlock.CommConfig{ID: 1, Transport: net})
	if err != nil {
		fmt.Println(err)
		return
	}
	_ = a.Block(1)
	_ = b.Block(0)
	a.StartDetection()
	sched.Run()
	fmt.Printf("communication deadlock: %v\n", declared)
	// Output:
	// communication deadlock: true
}
