package deadlock_test

import (
	"sync"
	"testing"
	"time"

	deadlock "repro"
	"repro/internal/sim"
)

// TestPublicAPISimulation exercises the facade end to end: build,
// apply, run, inspect.
func TestPublicAPISimulation(t *testing.T) {
	sys, err := deadlock.NewSimulation(5, deadlock.SimOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Apply(deadlock.Ring(5)); err != nil {
		t.Fatal(err)
	}
	sys.Run(1 << 16)
	if len(sys.Detections) == 0 {
		t.Fatal("no detection through the public API")
	}
	if got := sys.Detections[0].Tag.Initiator; got != sys.Detections[0].Proc {
		t.Fatalf("initiator %v declared for tag %v", sys.Detections[0].Proc, sys.Detections[0].Tag)
	}
}

// TestPublicAPILiveNetwork runs the protocol over goroutines via the
// facade, with a ring plus an unrelated pair that must stay quiet.
func TestPublicAPILiveNetwork(t *testing.T) {
	net := deadlock.NewLiveNetwork()
	defer net.Close()
	const n = 6
	var mu sync.Mutex
	declared := map[deadlock.ProcID]deadlock.Tag{}
	done := make(chan struct{}, n)
	procs := make([]*deadlock.Process, n+2)
	for i := 0; i < n+2; i++ {
		pid := deadlock.ProcID(i)
		p, err := deadlock.NewProcess(deadlock.ProcessConfig{
			ID:        pid,
			Transport: net,
			Policy:    deadlock.InitiateOnBlock,
			OnDeadlock: func(tag deadlock.Tag) {
				mu.Lock()
				declared[pid] = tag
				mu.Unlock()
				done <- struct{}{}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
	}
	// Ring among 0..n-1; n and n+1 form a benign chain.
	for i := 0; i < n; i++ {
		if err := procs[i].Request(deadlock.ProcID((i + 1) % n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := procs[n].Request(deadlock.ProcID(n + 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("live detection timed out")
	}
	// The benign pair must never declare.
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if _, bad := declared[deadlock.ProcID(n)]; bad {
		t.Fatal("benign waiter declared deadlock")
	}
	for pid := range declared {
		if int(pid) >= n {
			t.Fatalf("process %v outside the ring declared", pid)
		}
	}
}

// TestPublicAPITCPNetwork drives a 3-ring over real sockets through the
// facade.
func TestPublicAPITCPNetwork(t *testing.T) {
	net := deadlock.NewTCPNetwork()
	defer net.Close()
	detected := make(chan deadlock.Tag, 1)
	procs := make([]*deadlock.Process, 3)
	for i := 0; i < 3; i++ {
		cfg := deadlock.ProcessConfig{
			ID:        deadlock.ProcID(i),
			Transport: net,
			Policy:    deadlock.InitiateManually,
		}
		if i == 0 {
			cfg.OnDeadlock = func(tag deadlock.Tag) {
				select {
				case detected <- tag:
				default:
				}
			}
		}
		p, err := deadlock.NewProcess(cfg)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
	}
	for i := 0; i < 3; i++ {
		if err := procs[i].Request(deadlock.ProcID((i + 1) % 3)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := procs[0].StartProbe(); !ok {
		t.Fatal("initiator not blocked")
	}
	select {
	case tag := <-detected:
		if tag.Initiator != 0 {
			t.Fatalf("tag = %v", tag)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("TCP detection timed out")
	}
}

// TestPublicAPIDDB drives the DDB facade: a deterministic cross-site
// deadlock with resolution and retry commits fully.
func TestPublicAPIDDB(t *testing.T) {
	db, err := deadlock.NewDDB(deadlock.DDBOptions{
		Sites:     2,
		Resources: 2,
		Seed:      3,
		Resolve:   true,
		HoldTime:  int64(sim.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := func(a, b deadlock.ResourceID) []deadlock.LockStep {
		return []deadlock.LockStep{
			{Resource: a, Mode: deadlock.LockWrite},
			{Resource: b, Mode: deadlock.LockWrite},
		}
	}
	if err := db.Submit(deadlock.TxnSpec{Txn: 0, Home: 0, Steps: steps(0, 1), Retry: true}); err != nil {
		t.Fatal(err)
	}
	if err := db.Submit(deadlock.TxnSpec{Txn: 1, Home: 1, Steps: steps(1, 0), Retry: true}); err != nil {
		t.Fatal(err)
	}
	doneAt, done := db.RunUntilCommitted(sim.Time(10 * sim.Second))
	if !done {
		t.Fatalf("not all committed by %v", doneAt)
	}
	if len(db.Detections) == 0 {
		t.Fatal("no detections recorded")
	}
}

// TestSimNetworkFacade wires raw processes on the facade's simulated
// network constructor.
func TestSimNetworkFacade(t *testing.T) {
	sched, net := deadlock.NewSimNetwork(9, nil)
	detected := false
	mk := func(i int) *deadlock.Process {
		cfg := deadlock.ProcessConfig{ID: deadlock.ProcID(i), Transport: net, Policy: deadlock.InitiateOnBlock}
		if i == 0 {
			cfg.OnDeadlock = func(deadlock.Tag) { detected = true }
		}
		p, err := deadlock.NewProcess(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(0), mk(1)
	if err := a.Request(1); err != nil {
		t.Fatal(err)
	}
	if err := b.Request(0); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if !detected {
		t.Fatal("2-cycle not detected on facade sim network")
	}
}
